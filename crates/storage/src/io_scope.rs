//! Per-task I/O accounting and cooperative cancellation.
//!
//! The phase-task executor runs independent `⋈̄` arms of a bulk delete on
//! worker threads against one shared [`crate::SimDisk`]. The disk's global
//! [`DiskStats`] keep summing every charge — that sum is the *serial*
//! simulated clock. To additionally report the *critical-path* clock (what
//! the arms would cost if they truly overlapped), every charge is also
//! attributed to the [`IoScope`]s active on the charging thread.
//!
//! An [`IoScope`] hands out one counter *shard per entering thread*, so
//! workers sharing a scope never contend on a counter; [`IoScope::stats`]
//! merges the shards ("merged on join"). Scopes nest: a charge is recorded
//! into every scope on the current thread's stack, so a whole-run scope and
//! a per-phase scope can coexist.
//!
//! A scope may carry a [`CancelToken`]. The simulated disk checks the token
//! before charging any access and fails with
//! [`StorageError::Cancelled`](crate::StorageError::Cancelled), which is how
//! a failing arm aborts its siblings: the executor trips the shared token
//! and every other arm stops at its next disk access, unwinding through the
//! usual `Result` path (RAII page pins are released, nothing is poisoned).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::disk::DiskStats;
use crate::error::{StorageError, StorageResult};

#[derive(Default)]
struct CancelInner {
    flag: AtomicBool,
    lock: Mutex<()>,
    cond: Condvar,
}

impl std::fmt::Debug for CancelInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelInner")
            .field("flag", &self.flag)
            .finish_non_exhaustive()
    }
}

/// Shared abort flag checked by the simulated disk before every access.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trip the token: every scope carrying it fails its next disk access,
    /// and every thread parked in [`CancelToken::wait_cancelled_for`] wakes.
    pub fn cancel(&self) {
        let _g = self.inner.lock.lock();
        self.inner.flag.store(true, Ordering::Release);
        self.inner.cond.notify_all();
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::Acquire)
    }

    /// Park (condvar wait, not a spin) until the token is tripped or
    /// `timeout` passes; returns `true` if the token was tripped. Lets a
    /// task that can only make progress after a sibling's cancellation wait
    /// without burning a core.
    pub fn wait_cancelled_for(&self, timeout: Duration) -> bool {
        if self.is_cancelled() {
            return true;
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.inner.lock.lock();
        while !self.is_cancelled() {
            if self.inner.cond.wait_until(&mut guard, deadline).timed_out() {
                break;
            }
        }
        self.is_cancelled()
    }
}

/// One thread's private counter shard.
#[derive(Debug, Default)]
struct Shard {
    stats: Mutex<DiskStats>,
}

/// A per-task I/O tracker: enter it on any thread doing work for the task,
/// read the merged counters after the task joins.
#[derive(Debug, Default)]
pub struct IoScope {
    shards: Mutex<Vec<Arc<Shard>>>,
    cancel: Option<CancelToken>,
}

impl IoScope {
    /// A scope with no cancellation.
    pub fn new() -> Self {
        IoScope::default()
    }

    /// A scope whose disk accesses abort with `StorageError::Cancelled`
    /// once `token` is tripped.
    pub fn with_cancel(token: CancelToken) -> Self {
        IoScope {
            shards: Mutex::new(Vec::new()),
            cancel: Some(token),
        }
    }

    /// Activate this scope on the current thread. Disk charges made while
    /// the guard lives are attributed to this scope (in a thread-private
    /// shard) in addition to the disk's global counters.
    pub fn enter(&self) -> ScopeGuard {
        let shard = Arc::new(Shard::default());
        self.shards.lock().push(shard.clone());
        ACTIVE.with(|stack| {
            stack.borrow_mut().push(ActiveEntry {
                shard,
                cancel: self.cancel.clone(),
            })
        });
        ScopeGuard { _priv: () }
    }

    /// Merge every shard into one [`DiskStats`] (the join step).
    pub fn stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for shard in self.shards.lock().iter() {
            total.merge(&shard.stats.lock());
        }
        total
    }
}

struct ActiveEntry {
    shard: Arc<Shard>,
    cancel: Option<CancelToken>,
}

thread_local! {
    static ACTIVE: RefCell<Vec<ActiveEntry>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard deactivating the scope on the current thread.
#[must_use = "the scope is only active while the guard lives"]
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Attribute a charge to every scope active on this thread (no-op when none
/// is). Called by the simulated disk with the disk lock held, so shard
/// updates from one thread are never concurrent with themselves.
pub(crate) fn record(delta: &DiskStats) {
    ACTIVE.with(|stack| {
        for entry in stack.borrow().iter() {
            entry.shard.stats.lock().merge(delta);
        }
    });
}

thread_local! {
    static BYPASS_CANCEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with cancellation checks suspended on this thread. I/O is still
/// charged and attributed to active scopes — only the abort check is
/// skipped. Used by error-path cleanup (e.g. a cancelled bulk-delete arm
/// detaching its already-freed leaves) that must finish a small, bounded
/// amount of I/O to leave the structure consistent for a later re-run.
pub fn bypass_cancel<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            BYPASS_CANCEL.with(|b| b.set(prev));
        }
    }
    let _restore = Restore(BYPASS_CANCEL.with(|b| b.replace(true)));
    f()
}

/// Whether this thread is inside [`bypass_cancel`] (cleanup that must not
/// be aborted or parked — also consulted by [`crate::pacer::checkpoint`]).
pub(crate) fn bypassing() -> bool {
    BYPASS_CANCEL.with(|b| b.get())
}

/// Park (condvar wait, not a spin) until a cancel token carried by a scope
/// active on this thread is tripped, or `timeout` passes. Returns `true`
/// if a token was tripped; a thread with no cancel-carrying scope returns
/// `false` immediately. This is how a task that can only finish after a
/// sibling's cancellation waits without burning a core.
pub fn wait_cancelled_for(timeout: Duration) -> bool {
    let tokens: Vec<CancelToken> = ACTIVE.with(|stack| {
        stack
            .borrow()
            .iter()
            .filter_map(|e| e.cancel.clone())
            .collect()
    });
    match tokens.as_slice() {
        [] => false,
        [only] => only.wait_cancelled_for(timeout),
        many => {
            // Nested cancel-carrying scopes are rare; slice the wait so a
            // trip of *any* token is noticed promptly.
            let deadline = std::time::Instant::now() + timeout;
            loop {
                if many.iter().any(|t| t.is_cancelled()) {
                    return true;
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return false;
                }
                let slice = (deadline - now).min(Duration::from_millis(1));
                many[0].wait_cancelled_for(slice);
            }
        }
    }
}

/// Fail if any scope active on this thread carries a tripped cancel token.
pub(crate) fn check_cancelled() -> StorageResult<()> {
    if BYPASS_CANCEL.with(|b| b.get()) {
        return Ok(());
    }
    ACTIVE.with(|stack| {
        for entry in stack.borrow().iter() {
            if let Some(token) = &entry.cancel {
                if token.is_cancelled() {
                    return Err(StorageError::Cancelled);
                }
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::disk::{CostModel, SimDisk};

    fn pool_with_pages(n: usize) -> (std::sync::Arc<BufferPool>, u32) {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(n, crate::StructureId::Table);
        (BufferPool::new(disk, n.max(2)), first)
    }

    #[test]
    fn scope_attributes_only_charges_inside_guard() {
        let (pool, first) = pool_with_pages(4);
        let _ = pool.pin_read(first).unwrap(); // outside any scope
        pool.clear_cache().unwrap();
        let scope = IoScope::new();
        {
            let _g = scope.enter();
            let _ = pool.pin_read(first + 1).unwrap();
        }
        let _ = pool.pin_read(first + 2).unwrap(); // after the guard dropped
        let s = scope.stats();
        assert_eq!(s.pages_read, 1);
        assert!(s.sim_ms > 0.0);
    }

    #[test]
    fn nested_scopes_both_record() {
        let (pool, first) = pool_with_pages(2);
        let outer = IoScope::new();
        let inner = IoScope::new();
        {
            let _og = outer.enter();
            let _ = pool.pin_read(first).unwrap();
            {
                let _ig = inner.enter();
                let _ = pool.pin_read(first + 1).unwrap();
            }
        }
        assert_eq!(outer.stats().pages_read, 2);
        assert_eq!(inner.stats().pages_read, 1);
    }

    #[test]
    fn shards_merge_across_threads() {
        let (pool, first) = pool_with_pages(8);
        let scope = IoScope::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let pool = pool.clone();
                let scope = &scope;
                s.spawn(move || {
                    let _g = scope.enter();
                    let _ = pool.pin_read(first + t).unwrap();
                });
            }
        });
        assert_eq!(scope.stats().pages_read, 4);
    }

    #[test]
    fn cancelled_scope_fails_disk_access() {
        let (pool, first) = pool_with_pages(4);
        let token = CancelToken::new();
        let scope = IoScope::with_cancel(token.clone());
        let _g = scope.enter();
        let _ = pool.pin_read(first).unwrap();
        token.cancel();
        assert_eq!(
            pool.pin_read(first + 1).err(),
            Some(StorageError::Cancelled)
        );
        drop(_g);
        // Outside the scope the pool works again (nothing poisoned).
        let _ = pool.pin_read(first + 2).unwrap();
    }

    #[test]
    fn global_stats_unaffected_by_scopes() {
        let (pool, first) = pool_with_pages(2);
        pool.reset_stats();
        let scope = IoScope::new();
        let _g = scope.enter();
        let _ = pool.pin_read(first).unwrap();
        drop(_g);
        assert_eq!(pool.disk_stats().pages_read, scope.stats().pages_read);
    }
}
