//! Byte-accounted memory budget for sort and hash workspaces.
//!
//! The paper's prototype shares one memory allotment between page caching
//! and sorting ("The bulk deletion algorithm uses this main memory not only
//! for caching but also to carry out sorting", §4.1). The buffer pool takes
//! its share as frames; operators reserve workspace bytes here, and the
//! optimizer consults [`MemoryBudget::would_fit`] to choose between the
//! classic-hash and partitioned-hash bulk delete plans.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::{StorageError, StorageResult};

/// Shared byte budget with reserve/release accounting.
#[derive(Debug)]
pub struct MemoryBudget {
    cap: usize,
    used: AtomicUsize,
}

impl MemoryBudget {
    /// Budget with `cap` bytes.
    pub fn new(cap: usize) -> Self {
        MemoryBudget {
            cap,
            used: AtomicUsize::new(0),
        }
    }

    /// An effectively unlimited budget (for tests and in-memory paths).
    pub fn unlimited() -> Self {
        MemoryBudget::new(usize::MAX)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.cap.saturating_sub(self.used())
    }

    /// Whether a fresh reservation of `bytes` would succeed right now.
    pub fn would_fit(&self, bytes: usize) -> bool {
        bytes <= self.available()
    }

    /// Reserve `bytes`, failing if the budget would be exceeded.
    pub fn reserve(&self, bytes: usize) -> StorageResult<Reservation<'_>> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(bytes);
            if new > self.cap {
                return Err(StorageError::BudgetExceeded {
                    requested: bytes,
                    available: self.cap - cur,
                });
            }
            match self
                .used
                .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    return Ok(Reservation {
                        budget: self,
                        bytes,
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }
}

/// RAII reservation; releases its bytes on drop.
#[derive(Debug)]
pub struct Reservation<'a> {
    budget: &'a MemoryBudget,
    bytes: usize,
}

impl Reservation<'_> {
    /// Size of this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Grow the reservation in place.
    pub fn grow(&mut self, extra: usize) -> StorageResult<()> {
        let r = self.budget.reserve(extra)?;
        std::mem::forget(r);
        self.bytes += extra;
        Ok(())
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.budget.used.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = MemoryBudget::new(1000);
        let r = b.reserve(600).unwrap();
        assert_eq!(b.used(), 600);
        assert!(!b.would_fit(500));
        drop(r);
        assert_eq!(b.used(), 0);
        assert!(b.would_fit(1000));
    }

    #[test]
    fn over_reservation_fails() {
        let b = MemoryBudget::new(100);
        let _r = b.reserve(80).unwrap();
        let err = b.reserve(30).unwrap_err();
        assert_eq!(
            err,
            StorageError::BudgetExceeded {
                requested: 30,
                available: 20
            }
        );
    }

    #[test]
    fn grow_extends_reservation() {
        let b = MemoryBudget::new(100);
        let mut r = b.reserve(40).unwrap();
        r.grow(50).unwrap();
        assert_eq!(r.bytes(), 90);
        assert_eq!(b.used(), 90);
        assert!(r.grow(20).is_err());
        drop(r);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn concurrent_reservations_respect_cap() {
        let b = MemoryBudget::new(1000);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let b = &b;
                    s.spawn(move || {
                        let mut got = 0usize;
                        for _ in 0..100 {
                            if let Ok(r) = b.reserve(10) {
                                got += 10;
                                std::mem::forget(r); // keep it reserved
                            }
                        }
                        got
                    })
                })
                .collect();
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(total <= 1000);
            assert_eq!(b.used(), total);
        });
    }
}
