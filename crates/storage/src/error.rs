//! Error type shared by the storage layer.

use std::fmt;

use crate::disk::PageId;
use crate::rid::Rid;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page that was never allocated.
    PageOutOfBounds(PageId),
    /// Every frame in the buffer pool is pinned; nothing can be evicted.
    BufferExhausted,
    /// A record did not fit into the target page.
    PageFull,
    /// A slot lookup hit an empty (deleted) slot.
    SlotEmpty(Rid),
    /// A slot number exceeded the page's slot directory.
    SlotOutOfBounds(Rid),
    /// A record was larger than what a page can ever hold.
    RecordTooLarge {
        /// Rejected record length.
        len: usize,
        /// Maximum a fresh page can hold.
        max: usize,
    },
    /// A memory reservation exceeded the configured budget.
    BudgetExceeded {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// Reading past the end of a temporary segment.
    SegmentExhausted,
    /// An access failed because a programmed fault fired at this page
    /// (see [`crate::FaultPlan`]; transient faults are retried by the
    /// buffer pool, persistent ones surface to the caller).
    InjectedFault(PageId),
    /// A page image failed its end-to-end checksum on read — a torn write
    /// was persisted only partially (see [`crate::FaultKind::TornWrite`]).
    ChecksumMismatch(PageId),
    /// The disk reached the fault plan's crash point: the process is
    /// considered dead from this access on (never retried; the WAL's
    /// roll-forward recovery takes over after restart).
    SimulatedCrash,
    /// The access ran under an [`crate::IoScope`] whose [`crate::CancelToken`]
    /// was tripped — a sibling task failed and this task is being aborted.
    Cancelled,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds(pid) => write!(f, "page {pid} was never allocated"),
            StorageError::BufferExhausted => {
                write!(f, "buffer pool exhausted: all frames are pinned")
            }
            StorageError::PageFull => write!(f, "page has insufficient free space"),
            StorageError::SlotEmpty(rid) => write!(f, "slot {rid} is empty"),
            StorageError::SlotOutOfBounds(rid) => write!(f, "slot {rid} is out of bounds"),
            StorageError::RecordTooLarge { len, max } => {
                write!(f, "record of {len} bytes exceeds page capacity {max}")
            }
            StorageError::BudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "memory budget exceeded: requested {requested} bytes, {available} available"
            ),
            StorageError::SegmentExhausted => write!(f, "read past end of temporary segment"),
            StorageError::InjectedFault(pid) => {
                write!(f, "injected fault at page {pid}")
            }
            StorageError::ChecksumMismatch(pid) => {
                write!(f, "checksum mismatch at page {pid}: torn write detected")
            }
            StorageError::SimulatedCrash => {
                write!(f, "simulated crash: disk unavailable past the crash point")
            }
            StorageError::Cancelled => {
                write!(f, "task cancelled: a concurrent sibling task failed")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used throughout the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;
