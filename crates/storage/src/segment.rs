//! Temporary segments: sequential scratch space for external-sort runs.
//!
//! Sort runs deliberately bypass the buffer pool — spilling a run must not
//! evict the working set, and runs are written once and read once, strictly
//! sequentially. A [`SegmentWriter`] streams bytes onto freshly allocated
//! contiguous pages (charged as chained sequential writes); a
//! [`SegmentReader`] streams them back (chained sequential reads).

use std::sync::Arc;

use crate::buffer::BufferPool;
use crate::disk::{PageId, PAGE_SIZE};
use crate::error::{StorageError, StorageResult};
use crate::owner::StructureId;

/// How many pages a segment writer/reader moves per chained I/O.
const CHUNK_PAGES: usize = 8;

/// A finished temporary segment: its pages in write order plus a byte
/// length. Each extent is contiguous; a segment written without competing
/// allocations coalesces to a single extent, while sort arms spilling
/// concurrently against the shared disk produce several (their chunk
/// allocations interleave).
#[derive(Debug, Clone)]
pub struct TempSegment {
    extents: Vec<(PageId, usize)>, // (first page, page count), write order
    num_pages: usize,
    len_bytes: usize,
}

impl TempSegment {
    /// Total payload bytes stored.
    pub fn len_bytes(&self) -> usize {
        self.len_bytes
    }

    /// Number of disk pages occupied.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Number of contiguous extents (1 unless allocations interleaved).
    pub fn num_extents(&self) -> usize {
        self.extents.len()
    }

    /// Open a sequential reader over the segment.
    pub fn reader(&self, pool: Arc<BufferPool>) -> SegmentReader {
        SegmentReader {
            pool,
            seg: self.clone(),
            buf: Vec::new(),
            buf_off: 0,
            next: Vec::new(),
            ext_idx: 0,
            ext_off: 0,
            bytes_left: self.len_bytes,
        }
    }

    /// Release the segment's pages back to the catalog, one page at a time.
    ///
    /// Deliberately *not* `free_owned(StructureId::Temp)`: that would free
    /// every temp page on the disk, including the live runs of sort arms
    /// spilling concurrently. Page-level freeing is idempotent, so a
    /// segment freed twice (an explicit drain followed by a drop-time
    /// sweep) is harmless.
    pub fn free(&self, pool: &BufferPool) {
        pool.with_disk(|disk| {
            for &(first, n) in &self.extents {
                for i in 0..n {
                    disk.free_page(first + i as PageId);
                }
            }
        });
    }
}

/// Streaming writer building a [`TempSegment`].
pub struct SegmentWriter {
    pool: Arc<BufferPool>,
    chunk: Vec<u8>,
    pages: Vec<(PageId, usize)>, // (first page, page count) per flushed chunk
    len_bytes: usize,
}

impl SegmentWriter {
    /// Begin a new segment.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        SegmentWriter {
            pool,
            chunk: Vec::with_capacity(CHUNK_PAGES * PAGE_SIZE),
            pages: Vec::new(),
            len_bytes: 0,
        }
    }

    /// Append raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> StorageResult<()> {
        self.len_bytes += bytes.len();
        self.chunk.extend_from_slice(bytes);
        while self.chunk.len() >= CHUNK_PAGES * PAGE_SIZE {
            self.flush_pages(CHUNK_PAGES)?;
        }
        Ok(())
    }

    fn flush_pages(&mut self, n_pages: usize) -> StorageResult<()> {
        let bytes = n_pages * PAGE_SIZE;
        debug_assert!(self.chunk.len() >= bytes || n_pages == self.chunk.len().div_ceil(PAGE_SIZE));
        let first = self.pool.allocate_contiguous(n_pages, StructureId::Temp);
        let chunk = &mut self.chunk;
        self.pool.with_disk(|disk| {
            disk.write_chain(first, n_pages, |pid, page| {
                let i = (pid - first) as usize;
                let start = i * PAGE_SIZE;
                let end = ((i + 1) * PAGE_SIZE).min(chunk.len());
                if start < chunk.len() {
                    page[..end - start].copy_from_slice(&chunk[start..end]);
                }
            })
        })?;
        let consumed = bytes.min(self.chunk.len());
        self.chunk.drain(..consumed);
        self.pages.push((first, n_pages));
        Ok(())
    }

    /// Flush remaining bytes and return the finished segment.
    ///
    /// Every flush allocates contiguous pages, but separate flushes may not
    /// be adjacent if other allocations interleave (concurrent sort arms
    /// spilling against the shared disk). Adjacent flushes are coalesced, so
    /// the common serial case yields one extent; the reader handles both.
    pub fn finish(mut self) -> StorageResult<TempSegment> {
        if !self.chunk.is_empty() {
            let n = self.chunk.len().div_ceil(PAGE_SIZE);
            self.flush_pages(n)?;
        }
        let mut extents: Vec<(PageId, usize)> = Vec::new();
        let mut total_pages = 0;
        for &(f, n) in &self.pages {
            total_pages += n;
            match extents.last_mut() {
                Some((pf, pn)) if *pf + *pn as PageId == f => *pn += n,
                _ => extents.push((f, n)),
            }
        }
        Ok(TempSegment {
            extents,
            num_pages: total_pages,
            len_bytes: self.len_bytes,
        })
    }
}

/// Streaming reader over a [`TempSegment`], double-buffered: each chained
/// read fills the front buffer *and* a same-size read-ahead buffer, so run
/// consumption drains one while the next is already on board and a k-way
/// merge pays half the positionings per run.
pub struct SegmentReader {
    pool: Arc<BufferPool>,
    seg: TempSegment,
    buf: Vec<u8>,
    buf_off: usize,
    next: Vec<u8>,
    ext_idx: usize,
    ext_off: usize,
    bytes_left: usize,
}

impl SegmentReader {
    /// Bytes not yet read.
    pub fn remaining(&self) -> usize {
        self.bytes_left
    }

    fn refill(&mut self) -> StorageResult<()> {
        // The read-ahead buffer from the previous chain becomes the front
        // buffer without touching the disk.
        if !self.next.is_empty() {
            std::mem::swap(&mut self.buf, &mut self.next);
            self.next.clear();
            self.buf_off = 0;
            return Ok(());
        }
        let Some(&(ext_first, ext_len)) = self.seg.extents.get(self.ext_idx) else {
            return Err(StorageError::SegmentExhausted);
        };
        // Chained reads stay within one contiguous extent; crossing into the
        // next extent is a fresh chain (honestly charged as a new positioning
        // — the pages really are discontiguous on the simulated platter).
        let n = (2 * CHUNK_PAGES).min(ext_len - self.ext_off);
        let split = CHUNK_PAGES.min(n);
        let first = ext_first + self.ext_off as PageId;
        self.buf.clear();
        self.buf_off = 0;
        let buf = &mut self.buf;
        let next = &mut self.next;
        self.pool.with_disk(|disk| {
            disk.read_chain(first, n, |pid, page| {
                if ((pid - first) as usize) < split {
                    buf.extend_from_slice(&page[..]);
                } else {
                    next.extend_from_slice(&page[..]);
                }
            })
        })?;
        self.ext_off += n;
        if self.ext_off == ext_len {
            self.ext_idx += 1;
            self.ext_off = 0;
        }
        Ok(())
    }

    /// Read exactly `dst.len()` bytes.
    pub fn read_exact(&mut self, dst: &mut [u8]) -> StorageResult<()> {
        if dst.len() > self.bytes_left {
            return Err(StorageError::SegmentExhausted);
        }
        let mut filled = 0;
        while filled < dst.len() {
            if self.buf_off >= self.buf.len() {
                self.refill()?;
            }
            let take = (dst.len() - filled).min(self.buf.len() - self.buf_off);
            dst[filled..filled + take]
                .copy_from_slice(&self.buf[self.buf_off..self.buf_off + take]);
            self.buf_off += take;
            filled += take;
        }
        self.bytes_left -= dst.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{CostModel, SimDisk};

    fn pool() -> Arc<BufferPool> {
        BufferPool::new(SimDisk::new(CostModel::default()), 16)
    }

    #[test]
    fn roundtrip_small() {
        let pool = pool();
        let mut w = SegmentWriter::new(pool.clone());
        w.write(b"hello segment").unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(seg.len_bytes(), 13);
        let mut r = seg.reader(pool);
        let mut buf = [0u8; 13];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello segment");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_multi_chunk() {
        let pool = pool();
        let data: Vec<u8> = (0..CHUNK_PAGES * PAGE_SIZE * 2 + 777)
            .map(|i| (i % 251) as u8)
            .collect();
        let mut w = SegmentWriter::new(pool.clone());
        // Write in awkward pieces.
        for piece in data.chunks(1000) {
            w.write(piece).unwrap();
        }
        let seg = w.finish().unwrap();
        assert_eq!(seg.len_bytes(), data.len());
        let mut r = seg.reader(pool);
        let mut out = vec![0u8; data.len()];
        // Read in different awkward pieces.
        for piece in out.chunks_mut(313) {
            r.read_exact(piece).unwrap();
        }
        assert_eq!(out, data);
    }

    #[test]
    fn read_past_end_is_error() {
        let pool = pool();
        let mut w = SegmentWriter::new(pool.clone());
        w.write(&[1, 2, 3]).unwrap();
        let seg = w.finish().unwrap();
        let mut r = seg.reader(pool);
        let mut buf = [0u8; 4];
        assert_eq!(
            r.read_exact(&mut buf).unwrap_err(),
            StorageError::SegmentExhausted
        );
    }

    #[test]
    fn segment_io_is_sequential() {
        let pool = pool();
        pool.reset_stats();
        let data = vec![7u8; CHUNK_PAGES * PAGE_SIZE * 3];
        let mut w = SegmentWriter::new(pool.clone());
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();
        let mut r = seg.reader(pool.clone());
        let mut out = vec![0u8; data.len()];
        r.read_exact(&mut out).unwrap();
        let s = pool.disk_stats();
        // 3 chained writes + 3 chained reads; at most one positioning each.
        assert!(s.total_random() <= 6, "random ios: {}", s.total_random());
        assert_eq!(s.pages_written, (data.len() / PAGE_SIZE) as u64);
    }

    #[test]
    fn interleaved_allocations_yield_multi_extent_segment() {
        // Two writers spilling alternately (as concurrent sort arms do):
        // each one's flushes land on discontiguous pages, so the finished
        // segments carry multiple extents and must still round-trip.
        let pool = pool();
        let data_a: Vec<u8> = (0..CHUNK_PAGES * PAGE_SIZE * 3 + 99)
            .map(|i| (i % 241) as u8)
            .collect();
        let data_b: Vec<u8> = (0..CHUNK_PAGES * PAGE_SIZE * 3 + 41)
            .map(|i| (i % 239) as u8)
            .collect();
        let mut w_a = SegmentWriter::new(pool.clone());
        let mut w_b = SegmentWriter::new(pool.clone());
        let step = CHUNK_PAGES * PAGE_SIZE;
        for i in 0..3 {
            w_a.write(&data_a[i * step..((i + 1) * step).min(data_a.len())])
                .unwrap();
            w_b.write(&data_b[i * step..((i + 1) * step).min(data_b.len())])
                .unwrap();
        }
        w_a.write(&data_a[3 * step..]).unwrap();
        w_b.write(&data_b[3 * step..]).unwrap();
        let seg_a = w_a.finish().unwrap();
        let seg_b = w_b.finish().unwrap();
        assert!(seg_a.num_extents() > 1, "flushes interleaved");
        assert!(seg_b.num_extents() > 1, "flushes interleaved");
        for (seg, data) in [(seg_a, data_a), (seg_b, data_b)] {
            let mut r = seg.reader(pool.clone());
            let mut out = vec![0u8; data.len()];
            r.read_exact(&mut out).unwrap();
            assert_eq!(out, data);
        }
    }

    #[test]
    fn free_releases_every_page_but_only_its_own() {
        let pool = pool();
        let mut w_a = SegmentWriter::new(pool.clone());
        w_a.write(&vec![1u8; CHUNK_PAGES * PAGE_SIZE + 5]).unwrap();
        let seg_a = w_a.finish().unwrap();
        let mut w_b = SegmentWriter::new(pool.clone());
        w_b.write(&vec![2u8; PAGE_SIZE]).unwrap();
        let seg_b = w_b.finish().unwrap();
        let temp_pages = pool.catalog().pages_of(StructureId::Temp).len();
        assert_eq!(temp_pages, seg_a.num_pages() + seg_b.num_pages());
        // Freeing one segment must not touch the other's live pages.
        seg_a.free(&pool);
        assert_eq!(
            pool.catalog().pages_of(StructureId::Temp).len(),
            seg_b.num_pages()
        );
        let mut r = seg_b.reader(pool.clone());
        let mut out = vec![0u8; PAGE_SIZE];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, vec![2u8; PAGE_SIZE]);
        seg_b.free(&pool);
        seg_b.free(&pool); // double free is a no-op
        assert!(pool.catalog().pages_of(StructureId::Temp).is_empty());
    }

    #[test]
    fn reader_double_buffers_within_an_extent() {
        let pool = pool();
        let data = vec![9u8; CHUNK_PAGES * PAGE_SIZE * 4];
        let mut w = SegmentWriter::new(pool.clone());
        w.write(&data).unwrap();
        let seg = w.finish().unwrap();
        assert_eq!(seg.num_extents(), 1);
        pool.reset_stats();
        let mut r = seg.reader(pool.clone());
        let mut out = vec![0u8; data.len()];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, data);
        let s = pool.disk_stats();
        // 32 pages in double-chunk chains of 16: two chains, not four.
        assert_eq!(s.pages_read, 32);
        assert!(s.total_random() <= 2, "random ios: {}", s.total_random());
    }

    #[test]
    fn empty_segment() {
        let pool = pool();
        let w = SegmentWriter::new(pool.clone());
        let seg = w.finish().unwrap();
        assert_eq!(seg.len_bytes(), 0);
        assert_eq!(seg.num_pages(), 0);
        let mut r = seg.reader(pool);
        r.read_exact(&mut []).unwrap();
    }
}
