//! Free-space map for heap files.
//!
//! Tracks the usable free bytes of every heap page in coarse buckets so the
//! heap can place re-inserted records without probing pages one by one
//! (cf. McAuliffe et al.'s free-space management, cited by the paper).

use std::collections::{BTreeMap, HashMap};

use crate::disk::PageId;

/// Number of free-space buckets. Bucket `b` holds pages with at least
/// `b * (PAGE_SIZE / BUCKETS)` usable free bytes.
const BUCKETS: usize = 16;
const BUCKET_WIDTH: usize = crate::disk::PAGE_SIZE / BUCKETS;

/// In-memory free-space map.
#[derive(Debug, Default)]
pub struct FreeSpaceMap {
    /// Exact free bytes per tracked page.
    free: HashMap<PageId, usize>,
    /// bucket -> pages currently in that bucket (BTreeMap so searches favor
    /// fuller pages first deterministically).
    buckets: Vec<BTreeMap<PageId, ()>>,
}

impl FreeSpaceMap {
    /// Empty map.
    pub fn new() -> Self {
        FreeSpaceMap {
            free: HashMap::new(),
            buckets: (0..BUCKETS).map(|_| BTreeMap::new()).collect(),
        }
    }

    fn bucket_of(free: usize) -> usize {
        (free / BUCKET_WIDTH).min(BUCKETS - 1)
    }

    /// Record (or update) the free space of `pid`.
    pub fn update(&mut self, pid: PageId, free_bytes: usize) {
        if let Some(old) = self.free.insert(pid, free_bytes) {
            self.buckets[Self::bucket_of(old)].remove(&pid);
        }
        self.buckets[Self::bucket_of(free_bytes)].insert(pid, ());
    }

    /// Forget a page entirely (page was reclaimed).
    pub fn remove(&mut self, pid: PageId) {
        if let Some(old) = self.free.remove(&pid) {
            self.buckets[Self::bucket_of(old)].remove(&pid);
        }
    }

    /// Exact free bytes recorded for `pid`.
    pub fn free_bytes(&self, pid: PageId) -> Option<usize> {
        self.free.get(&pid).copied()
    }

    /// Find a page with at least `needed` free bytes, preferring the fullest
    /// candidate bucket (best-fit-ish) to keep pages densely packed.
    pub fn find_page(&self, needed: usize) -> Option<PageId> {
        // The bucket floor guarantees >= bucket * WIDTH free bytes, so start
        // from the first bucket whose floor satisfies the request.
        let start = needed.div_ceil(BUCKET_WIDTH).min(BUCKETS - 1);
        for b in start..BUCKETS {
            for (&pid, ()) in &self.buckets[b] {
                if self.free[&pid] >= needed {
                    return Some(pid);
                }
            }
        }
        // `start` bucket may contain pages just below its floor multiple.
        if start > 0 {
            for (&pid, ()) in &self.buckets[start - 1] {
                if self.free[&pid] >= needed {
                    return Some(pid);
                }
            }
        }
        None
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True if no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Every tracked page, ascending.
    pub fn pages(&self) -> Vec<PageId> {
        let mut out: Vec<PageId> = self.free.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Pages whose recorded free space equals an entirely-empty slotted page
    /// (candidates for reclamation).
    pub fn pages_with_at_least(&self, bytes: usize) -> Vec<PageId> {
        self.free
            .iter()
            .filter(|&(_, &f)| f >= bytes)
            .map(|(&p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_page_with_enough_space() {
        let mut fsm = FreeSpaceMap::new();
        fsm.update(1, 100);
        fsm.update(2, 600);
        fsm.update(3, 3000);
        assert_eq!(fsm.find_page(500), Some(2));
        assert_eq!(fsm.find_page(2000), Some(3));
        assert_eq!(fsm.find_page(3500), None);
    }

    #[test]
    fn update_moves_between_buckets() {
        let mut fsm = FreeSpaceMap::new();
        fsm.update(1, 3000);
        assert_eq!(fsm.find_page(2500), Some(1));
        fsm.update(1, 10);
        assert_eq!(fsm.find_page(2500), None);
        assert_eq!(fsm.free_bytes(1), Some(10));
    }

    #[test]
    fn remove_forgets_page() {
        let mut fsm = FreeSpaceMap::new();
        fsm.update(7, 1000);
        fsm.remove(7);
        assert!(fsm.is_empty());
        assert_eq!(fsm.find_page(1), None);
    }

    #[test]
    fn boundary_requests_checked_against_exact_free() {
        let mut fsm = FreeSpaceMap::new();
        // 300 bytes lands in bucket 1 (floor 256). A request for 290 starts
        // scanning at bucket 2 and must fall back to bucket 1's exact check.
        fsm.update(9, 300);
        assert_eq!(fsm.find_page(290), Some(9));
        assert_eq!(fsm.find_page(301), None);
    }

    #[test]
    fn pages_with_at_least_filters() {
        let mut fsm = FreeSpaceMap::new();
        fsm.update(1, 100);
        fsm.update(2, 4000);
        fsm.update(3, 4092);
        let mut big = fsm.pages_with_at_least(4000);
        big.sort();
        assert_eq!(big, vec![2, 3]);
    }
}
