#![warn(missing_docs)]

//! Paged storage substrate for the bulk-delete reproduction.
//!
//! The paper's prototype ran on a SUN Ultra 10 with a 1998 Seagate Medialist
//! Pro disk and Solaris direct I/O. This crate replaces that hardware with a
//! *simulated disk* ([`SimDisk`]): an in-memory page store that charges every
//! page access against a configurable [`CostModel`] (average seek + average
//! rotational latency for a random access, transfer time only for a
//! sequential successor, one positioning cost per *chained* multi-page read).
//!
//! Everything above the disk is real database machinery:
//!
//! * [`BufferPool`] — a bounded frame cache with pin/unpin, LRU eviction and
//!   dirty write-back. Memory limits from the paper's experiments (2–10 MB)
//!   map directly to frame counts.
//! * [`SlottedPage`] — the classic slotted page layout used by heap pages.
//! * [`HeapFile`] — a fixed-record heap with stable [`Rid`]s, a free-space
//!   map, and a sequential scan that issues chained reads.
//! * [`TempSegment`] — scratch space for external-sort runs that bypasses the
//!   buffer pool (sort runs must not evict the working set).
//! * [`ReadAhead`] — windowed read-ahead over a sorted page stream: upcoming
//!   pages are coalesced into chained [`BufferPool::prefetch_run`] calls so
//!   probe/scan/merge hot paths pay one positioning cost per window instead
//!   of one per page.
//! * [`MemoryBudget`] — byte accounting shared by sort and hash workspaces.
//! * [`IoScope`] / [`CancelToken`] — per-task I/O attribution (sharded
//!   counters merged on join) and cooperative cancellation for concurrent
//!   bulk-delete arms; the disk's own counters keep the serial total.
//! * [`Pacer`] — the cooperative-scheduling layer for long page-visit
//!   loops: every bulk walk calls [`pacer::checkpoint`] between page
//!   visits (never with a pin held), so a running bulk delete can be
//!   paused at page granularity (parked wait, zero pinned frames) or
//!   cancelled through the normal `Result` path.
//! * [`FaultPlan`] — programmable fault injection (transient/persistent
//!   faults, torn writes caught by per-page checksums, crash points), with
//!   bounded retry-with-backoff in the buffer pool ([`RetryPolicy`]).
//! * [`PageCatalog`] / [`StructureId`] — the owner-tagged page catalog:
//!   every allocation names the structure that owns the page, so media
//!   recovery can classify a torn page by lookup and rebuild only the
//!   damaged structure.

pub mod budget;
pub mod buffer;
pub mod disk;
pub mod error;
pub mod fault;
pub mod fsm;
pub mod heap;
pub mod io_scope;
pub mod owner;
pub mod pacer;
pub mod page;
pub mod readahead;
pub mod rid;
pub mod segment;
pub mod slotted;

pub use budget::MemoryBudget;
pub use buffer::{BufferPool, PageRead, PageWrite, PoolStats, RetryPolicy};
pub use disk::{CostModel, DiskStats, PageId, SimDisk, PAGE_SIZE};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultKind, FaultOp, FaultPlan, FaultSpec, FaultTrigger};
pub use fsm::FreeSpaceMap;
pub use heap::{FsmMismatch, HeapFile, HeapScan};
pub use io_scope::{CancelToken, IoScope, ScopeGuard};
pub use owner::{PageCatalog, StructureId};
pub use pacer::{PaceGuard, Pacer};
pub use page::PageBuf;
pub use readahead::{ReadAhead, READ_AHEAD_WINDOW};
pub use rid::Rid;
pub use segment::{SegmentReader, SegmentWriter, TempSegment};
pub use slotted::SlottedPage;
