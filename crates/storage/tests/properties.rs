//! Property-based tests for the storage substrate.

use std::collections::HashMap;

use proptest::prelude::*;

use bd_storage::StructureId;
use bd_storage::{
    BufferPool, CostModel, FreeSpaceMap, HeapFile, MemoryBudget, Rid, SimDisk, PAGE_SIZE,
};

fn pool(frames: usize) -> std::sync::Arc<BufferPool> {
    BufferPool::new(SimDisk::new(CostModel::default()), frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A heap file behaves exactly like a map from RID to record bytes
    /// under arbitrary insert/delete/get sequences, at any pool size.
    #[test]
    fn heap_matches_model(
        ops in prop::collection::vec((0u8..3, 0usize..64, 1usize..200), 1..300),
        frames in 4usize..32,
    ) {
        let mut heap = HeapFile::create(pool(frames));
        let mut model: HashMap<Rid, Vec<u8>> = HashMap::new();
        let mut live: Vec<Rid> = Vec::new();
        for (op, pick, len) in ops {
            match op {
                0 => {
                    let rec = vec![(len % 251) as u8; len];
                    let rid = heap.insert(&rec).unwrap();
                    prop_assert!(!model.contains_key(&rid), "rid reuse while live");
                    model.insert(rid, rec);
                    live.push(rid);
                }
                1 if !live.is_empty() => {
                    let rid = live.remove(pick % live.len());
                    let bytes = heap.delete(rid).unwrap();
                    prop_assert_eq!(&bytes, &model.remove(&rid).unwrap());
                }
                _ if !live.is_empty() => {
                    let rid = live[pick % live.len()];
                    prop_assert_eq!(&heap.get(rid).unwrap(), model.get(&rid).unwrap());
                }
                _ => {}
            }
        }
        prop_assert_eq!(heap.len(), model.len());
        // Dump (error-checked scan) returns exactly the model contents in
        // RID order.
        let scanned = heap.dump().unwrap();
        prop_assert!(scanned.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert_eq!(scanned.len(), model.len());
        for (rid, bytes) in scanned {
            prop_assert_eq!(&bytes, model.get(&rid).unwrap());
        }
        // The structured FSM audit agrees with the assert-based checker.
        prop_assert_eq!(heap.audit_fsm().unwrap(), vec![]);
        heap.verify_fsm().unwrap();
    }

    /// Bulk delete (sorted) equals per-record deletes for any victim set.
    #[test]
    fn heap_bulk_delete_matches_loop(
        n in 1usize..200,
        picks in prop::collection::vec(any::<bool>(), 200),
    ) {
        let mut a = HeapFile::create(pool(16));
        let mut b = HeapFile::create(pool(16));
        let mut rids = Vec::new();
        for i in 0..n {
            let rec = vec![(i % 251) as u8; 40 + i % 100];
            let ra = a.insert(&rec).unwrap();
            let rb = b.insert(&rec).unwrap();
            prop_assert_eq!(ra, rb);
            rids.push(ra);
        }
        let mut victims: Vec<Rid> = rids
            .iter()
            .zip(picks.iter())
            .filter(|(_, &p)| p)
            .map(|(&r, _)| r)
            .collect();
        // Variable-length records let the FSM place later inserts on
        // earlier pages, so insertion order is not RID order.
        victims.sort_unstable();
        let out = a.bulk_delete_sorted(&victims).unwrap();
        prop_assert_eq!(out.len(), victims.len());
        for &v in &victims {
            b.delete(v).unwrap();
        }
        let sa: Vec<_> = a.scan().collect();
        let sb: Vec<_> = b.scan().collect();
        prop_assert_eq!(sa, sb);
    }

    /// The FSM always returns a page that truly fits, and returns `None`
    /// only when no tracked page fits.
    #[test]
    fn fsm_find_is_sound_and_complete(
        pages in prop::collection::vec(0usize..PAGE_SIZE, 1..60),
        request in 0usize..PAGE_SIZE,
    ) {
        let mut fsm = FreeSpaceMap::new();
        for (i, &free) in pages.iter().enumerate() {
            fsm.update(i as u32, free);
        }
        match fsm.find_page(request) {
            Some(pid) => prop_assert!(pages[pid as usize] >= request),
            None => prop_assert!(pages.iter().all(|&f| f < request)),
        }
    }

    /// Budget arithmetic never loses bytes across arbitrary reserve/release
    /// interleavings.
    #[test]
    fn budget_conserves_bytes(
        ops in prop::collection::vec((any::<bool>(), 1usize..5000), 1..100),
    ) {
        let budget = MemoryBudget::new(64 * 1024);
        let mut held = Vec::new();
        for (acquire, bytes) in ops {
            if acquire {
                if let Ok(r) = budget.reserve(bytes) {
                    held.push(r);
                }
            } else if !held.is_empty() {
                held.pop();
            }
            let expect: usize = held.iter().map(|r| r.bytes()).sum();
            prop_assert_eq!(budget.used(), expect);
            prop_assert!(budget.used() <= budget.capacity());
        }
        drop(held);
        prop_assert_eq!(budget.used(), 0);
    }

    /// Pages written through the pool read back identically regardless of
    /// eviction pressure, and a flush+crash preserves exactly the flushed
    /// state.
    #[test]
    fn pool_durability_under_pressure(
        writes in prop::collection::vec((0u32..40, any::<u8>()), 1..200),
        frames in 2usize..8,
    ) {
        let mut disk = SimDisk::new(CostModel::default());
        let first = disk.allocate_contiguous(40, StructureId::Table);
        let pool = BufferPool::new(disk, frames);
        let mut model = [0u8; 40];
        for (pid, byte) in writes {
            let mut w = pool.pin_write(first + pid).unwrap();
            w[0] = byte;
            model[pid as usize] = byte;
        }
        pool.flush_all().unwrap();
        pool.crash(); // volatile loss: flushed state must be complete
        for i in 0..40u32 {
            let r = pool.pin_read(first + i).unwrap();
            prop_assert_eq!(r[0], model[i as usize]);
        }
    }
}
