//! The log manager: an append-only, force-on-append record log.
//!
//! The log models stable storage: anything appended survives a simulated
//! crash (which discards only the buffer pool). Records are stored
//! length-prefixed in one byte buffer to keep the encoding honest.

use parking_lot::Mutex;

use crate::driver::WalError;
use crate::record::{LogRecord, Lsn};

#[derive(Default)]
struct Inner {
    buf: Vec<u8>,
    offsets: Vec<(usize, usize)>, // (start, len) per record
}

/// Append-only record log.
#[derive(Default)]
pub struct LogManager {
    inner: Mutex<Inner>,
}

impl LogManager {
    /// Empty log.
    pub fn new() -> Self {
        LogManager::default()
    }

    /// Append a record (forced: durable immediately). Returns its LSN.
    pub fn append(&self, record: &LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        let bytes = record.encode();
        let start = inner.buf.len();
        inner
            .buf
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        inner.buf.extend_from_slice(&bytes);
        inner.offsets.push((start + 4, bytes.len()));
        (inner.offsets.len() - 1) as Lsn
    }

    /// Append pre-encoded record bytes without validating them. Fault-
    /// injection tests corrupt the log through this; [`LogManager::append`]
    /// is the honest path.
    pub fn append_raw(&self, bytes: &[u8]) -> Lsn {
        let mut inner = self.inner.lock();
        let start = inner.buf.len();
        inner
            .buf
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        inner.buf.extend_from_slice(bytes);
        inner.offsets.push((start + 4, bytes.len()));
        (inner.offsets.len() - 1) as Lsn
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.lock().offsets.len()
    }

    /// True if no records were appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode every record in order (recovery's analysis pass). A record
    /// that fails to decode surfaces as [`WalError::CorruptLog`].
    pub fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        let inner = self.inner.lock();
        inner
            .offsets
            .iter()
            .map(|&(start, len)| LogRecord::decode(&inner.buf[start..start + len]))
            .collect()
    }

    /// Total bytes in the log (diagnostics).
    pub fn byte_len(&self) -> usize {
        self.inner.lock().buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StructureId;

    #[test]
    fn append_and_replay() {
        let log = LogManager::new();
        let l0 = log.append(&LogRecord::BulkBegin {
            probe_attr: 0,
            keys: vec![1, 2, 3],
        });
        let l1 = log.append(&LogRecord::StructureDone {
            structure: StructureId::Table,
        });
        let l2 = log.append(&LogRecord::BulkCommit);
        assert_eq!((l0, l1, l2), (0, 1, 2));
        let records = log.records().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], LogRecord::BulkCommit);
        assert!(matches!(records[0], LogRecord::BulkBegin { ref keys, .. } if keys.len() == 3));
    }

    #[test]
    fn log_is_byte_backed() {
        let log = LogManager::new();
        log.append(&LogRecord::BulkCommit);
        assert!(log.byte_len() >= 5);
    }

    #[test]
    fn corrupt_record_surfaces_from_records() {
        let log = LogManager::new();
        log.append(&LogRecord::BulkCommit);
        log.append_raw(&[99, 1, 2, 3]); // unknown tag
        assert!(matches!(log.records(), Err(WalError::CorruptLog(_))));
    }
}
