//! The log manager: an append-only, force-on-append record log.
//!
//! The log models stable storage: anything appended survives a simulated
//! crash (which discards only the buffer pool). Records are stored
//! length-prefixed in one byte buffer to keep the encoding honest.

use parking_lot::Mutex;

use crate::driver::WalError;
use crate::record::{LogRecord, Lsn};

#[derive(Default)]
struct Inner {
    buf: Vec<u8>,
    offsets: Vec<(usize, usize)>, // (start, len) per record
}

/// Append-only record log.
#[derive(Default)]
pub struct LogManager {
    inner: Mutex<Inner>,
}

impl LogManager {
    /// Empty log.
    pub fn new() -> Self {
        LogManager::default()
    }

    /// Append a record (forced: durable immediately). Returns its LSN.
    pub fn append(&self, record: &LogRecord) -> Lsn {
        let mut inner = self.inner.lock();
        let bytes = record.encode();
        let start = inner.buf.len();
        inner
            .buf
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        inner.buf.extend_from_slice(&bytes);
        inner.offsets.push((start + 4, bytes.len()));
        (inner.offsets.len() - 1) as Lsn
    }

    /// Append pre-encoded record bytes without validating them. Fault-
    /// injection tests corrupt the log through this; [`LogManager::append`]
    /// is the honest path.
    pub fn append_raw(&self, bytes: &[u8]) -> Lsn {
        let mut inner = self.inner.lock();
        let start = inner.buf.len();
        inner
            .buf
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        inner.buf.extend_from_slice(bytes);
        inner.offsets.push((start + 4, bytes.len()));
        (inner.offsets.len() - 1) as Lsn
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.inner.lock().offsets.len()
    }

    /// True if no records were appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode every record in order (recovery's analysis pass). A record
    /// that fails to decode surfaces as [`WalError::CorruptLog`].
    pub fn records(&self) -> Result<Vec<LogRecord>, WalError> {
        let inner = self.inner.lock();
        inner
            .offsets
            .iter()
            .map(|&(start, len)| LogRecord::decode(&inner.buf[start..start + len]))
            .collect()
    }

    /// Total bytes in the log (diagnostics).
    pub fn byte_len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// A copy of the raw log bytes. The erasure verifier scans this as one
    /// of its proof surfaces: after redaction no erased key may remain
    /// anywhere in the log image.
    pub fn raw_bytes(&self) -> Vec<u8> {
        self.inner.lock().buf.clone()
    }

    /// Scrub every record with LSN `< before` whose tag is in `tags`,
    /// overwriting its payload **in place** with a [`LogRecord::Redacted`]
    /// marker plus zero padding. Record offsets and lengths are preserved,
    /// so LSNs and the byte layout of untouched records never move — the
    /// log stays decodable end to end. Returns how many records were
    /// redacted.
    ///
    /// This is the erasure campaign's commit-time step: the delete lists
    /// and materialized victim rows the WAL needed for crash recovery are
    /// themselves key-bearing surfaces, and once the campaign commits they
    /// must stop retaining the erased values.
    pub fn redact_before(&self, before: Lsn, tags: &[u8]) -> usize {
        let mut inner = self.inner.lock();
        let mut redacted = 0;
        for lsn in 0..(before as usize).min(inner.offsets.len()) {
            let (start, len) = inner.offsets[lsn];
            // A one-byte slot cannot hold the [11, original_tag] marker;
            // no key-bearing record is that small.
            if len < 2 {
                continue;
            }
            let tag = inner.buf[start];
            if !tags.contains(&tag) || tag == 11 {
                continue;
            }
            inner.buf[start] = 11; // Redacted
            inner.buf[start + 1] = tag;
            inner.buf[start + 2..start + len].fill(0);
            redacted += 1;
        }
        redacted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StructureId;

    #[test]
    fn append_and_replay() {
        let log = LogManager::new();
        let l0 = log.append(&LogRecord::BulkBegin {
            probe_attr: 0,
            keys: vec![1, 2, 3],
        });
        let l1 = log.append(&LogRecord::StructureDone {
            structure: StructureId::Table,
        });
        let l2 = log.append(&LogRecord::BulkCommit);
        assert_eq!((l0, l1, l2), (0, 1, 2));
        let records = log.records().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], LogRecord::BulkCommit);
        assert!(matches!(records[0], LogRecord::BulkBegin { ref keys, .. } if keys.len() == 3));
    }

    #[test]
    fn log_is_byte_backed() {
        let log = LogManager::new();
        log.append(&LogRecord::BulkCommit);
        assert!(log.byte_len() >= 5);
    }

    #[test]
    fn corrupt_record_surfaces_from_records() {
        let log = LogManager::new();
        log.append(&LogRecord::BulkCommit);
        log.append_raw(&[99, 1, 2, 3]); // unknown tag
        assert!(matches!(log.records(), Err(WalError::CorruptLog(_))));
    }

    #[test]
    fn redact_scrubs_key_bearing_records_in_place() {
        let log = LogManager::new();
        log.append(&LogRecord::BulkBegin {
            probe_attr: 0,
            keys: vec![0xDEAD_BEEF_CAFE_F00D, 7],
        });
        log.append(&LogRecord::StructureDone {
            structure: StructureId::Table,
        });
        log.append(&LogRecord::BulkCommit);
        let bytes_before = log.byte_len();

        let n = log.redact_before(log.len() as Lsn, &[1, 2, 8]);
        assert_eq!(n, 1, "only the BulkBegin bears keys");
        // Layout untouched: same byte length, every record still decodes.
        assert_eq!(log.byte_len(), bytes_before);
        let records = log.records().unwrap();
        assert_eq!(records[0], LogRecord::Redacted { original_tag: 1 });
        assert_eq!(records[2], LogRecord::BulkCommit);
        // The key value is gone from the raw image.
        let raw = log.raw_bytes();
        let needle = 0xDEAD_BEEF_CAFE_F00Du64.to_le_bytes();
        assert!(
            !raw.windows(8).any(|w| w == needle),
            "redaction must remove the key bytes from the log image"
        );
        // Idempotent: a second pass finds nothing left to scrub.
        assert_eq!(log.redact_before(log.len() as Lsn, &[1, 2, 8]), 0);
    }

    #[test]
    fn redact_respects_the_lsn_bound() {
        let log = LogManager::new();
        log.append(&LogRecord::BulkBegin {
            probe_attr: 0,
            keys: vec![1],
        });
        let bound = log.append(&LogRecord::BulkCommit);
        log.append(&LogRecord::BulkBegin {
            probe_attr: 0,
            keys: vec![2],
        });
        // Redact strictly before the commit: the later BulkBegin survives.
        assert_eq!(log.redact_before(bound, &[1]), 1);
        let records = log.records().unwrap();
        assert_eq!(records[0], LogRecord::Redacted { original_tag: 1 });
        assert!(matches!(records[2], LogRecord::BulkBegin { ref keys, .. } if keys == &[2]));
    }
}
