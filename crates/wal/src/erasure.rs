//! Durable erasure campaigns: crash-safe cascading deletes with
//! proof-of-deletion.
//!
//! A plain cascading delete ([`bd_core::run_cascade`]) is logically
//! correct but neither *durable* (a crash mid-cascade strands the
//! referential graph half-deleted, with no record of what remained to do)
//! nor *physically complete* (deleted bytes survive on heap slack, index
//! slack, separators, replicas, free pages — and in the WAL itself, whose
//! delete lists and materialized victim rows are key-bearing records).
//!
//! [`run_erasure_campaign`] fixes both:
//!
//! 1. the full cascade is planned up front and persisted as a **campaign
//!    manifest** ([`LogRecord::CampaignBegin`]) — recovery never re-plans
//!    against a half-deleted foreign-key graph;
//! 2. each table's bulk delete runs through the §3.2 recoverable driver
//!    and is sealed with a [`LogRecord::CampaignStepDone`];
//! 3. after the last step a whole-database physical scrub destroys every
//!    residual key image, the log's own key-bearing records are redacted
//!    **in place** ([`LogManager::redact_before`]), and a
//!    [`LogRecord::CampaignCommit`] closes the campaign;
//! 4. [`bd_core::verify_erasure`] then proves the deletion: a byte-level
//!    scan of every page, every replica, and the raw log for any
//!    surviving sensitive value.
//!
//! A crash at any I/O recovers into the same campaign:
//! [`recover_campaign`] finds the open manifest, rolls the in-flight
//! step's bulk run forward with the ordinary WAL recovery, runs the
//! remaining steps, and re-runs the scrub (every scrub write is designed
//! to be idempotent and torn-write-benign — see the heap scrub's
//! non-moving contract and the B-tree scrub's canonical separators).
//!
//! Cancellation is cooperative via [`Pacer`]: a cancel observed between
//! steps appends [`LogRecord::CampaignCancelled`] — the completed prefix
//! is durable and consistent, and recovery treats the campaign as closed.

use std::collections::BTreeSet;

use bd_core::{
    collect_sensitive, erasure::victim_rows, scrub_database, verify_erasure, CascadePlan, Database,
    DbError, ErasureReport, ScrubReport, TableId,
};
use bd_storage::{io_scope::bypass_cancel, Pacer, PageId};

use crate::driver::{recover_media, run_bulk_delete_parallel, CrashInjector, WalError};
use crate::log::LogManager;
use crate::record::{CampaignStep, LogRecord, Lsn};

/// Tags of key-bearing records scrubbed at campaign commit: `BulkBegin`
/// (1, the delete list), `RowsMaterialized` (2, every victim attribute),
/// and `CampaignBegin` (8, the manifest's key closure).
pub const KEY_BEARING_TAGS: [u8; 3] = [1, 2, 8];

/// What a completed (or recovered) erasure campaign accomplished.
#[derive(Debug)]
pub struct ErasureOutcome {
    /// Campaign identifier as recorded in the log.
    pub id: u64,
    /// Manifest steps this call executed (a recovery that found every
    /// step already sealed reports 0 and only re-runs the scrub).
    pub steps_run: usize,
    /// Victim rows deleted by the steps this call executed.
    pub deleted: usize,
    /// What the physical scrub destroyed.
    pub scrub: ScrubReport,
    /// Key-bearing log records redacted at commit.
    pub redacted: usize,
    /// The proof of deletion over every surface, the raw log included.
    pub report: ErasureReport,
}

fn manifest_steps(plan: &CascadePlan) -> Vec<CampaignStep> {
    plan.steps
        .iter()
        .map(|s| CampaignStep {
            table: s.table as u32,
            attr: s.attr as u16,
            keys: s.keys.clone(),
        })
        .collect()
}

/// Run a durable erasure campaign for a pre-planned cascade.
///
/// The manifest is logged before any other work, so every later crash
/// point recovers into this campaign via [`recover_campaign`]. `workers`
/// selects the serial (≤ 1) or parallel fan-out bulk-delete driver per
/// step. The `pacer` governs the run cooperatively: it is checked with
/// nothing in flight between steps (a cancel there seals the campaign
/// with a [`LogRecord::CampaignCancelled`] naming the committed prefix)
/// and installed around each step's body with deferred cancellation — a
/// step, once begun, either completes or crashes, it is never abandoned
/// half-run by a cancel.
pub fn run_erasure_campaign(
    db: &mut Database,
    plan: &CascadePlan,
    log: &LogManager,
    workers: usize,
    pacer: &Pacer,
) -> Result<ErasureOutcome, WalError> {
    let id = log.len() as u64;
    log.append(&LogRecord::CampaignBegin {
        id,
        steps: manifest_steps(plan),
    });
    // Sensitive values must be captured while the victim rows still
    // exist. A crash from here on re-derives the same set from the
    // manifest, the logged victim rows, and the still-live remainder.
    let sensitive = collect_sensitive(db, plan)?;

    let mut deleted = 0usize;
    for (i, step) in plan.steps.iter().enumerate() {
        // Pause/cancel point between steps: nothing in flight. The
        // completed prefix is durable (each step's driver flushes before
        // its commit), so a cancel here leaves a consistent database and
        // a manifest that says exactly how far the campaign got.
        if let Err(e) = pacer.check() {
            log.append(&LogRecord::CampaignCancelled {
                id,
                completed: i as u32,
            });
            return Err(DbError::from(e).into());
        }
        deleted += {
            let _pace = pacer.enter_defer_cancel();
            run_bulk_delete_parallel(
                db,
                step.table,
                step.attr,
                &step.keys,
                log,
                CrashInjector::none(),
                workers,
            )?
        };
        log.append(&LogRecord::CampaignStepDone { id, step: i as u32 });
    }

    let (scrub, redacted, report) = finish_campaign(db, log, id, &sensitive)?;
    Ok(ErasureOutcome {
        id,
        steps_run: plan.steps.len(),
        deleted,
        scrub,
        redacted,
        report,
    })
}

/// The campaign's obligated tail: physical scrub, log redaction, commit
/// marker, then the proof. Runs under [`bypass_cancel`] — every step is
/// already committed, so a cancel arriving now must not strand a
/// fully-deleted campaign uncommitted (mirroring the live deleter's
/// phase-2 contract).
fn finish_campaign(
    db: &mut Database,
    log: &LogManager,
    id: u64,
    sensitive: &[u64],
) -> Result<(ScrubReport, usize, ErasureReport), WalError> {
    let (scrub, redacted) = bypass_cancel(|| -> Result<_, WalError> {
        let scrub = scrub_database(db)?;
        let redacted = log.redact_before(log.len() as Lsn, &KEY_BEARING_TAGS);
        log.append(&LogRecord::CampaignCommit { id });
        Ok((scrub, redacted))
    })?;
    let raw = log.raw_bytes();
    let report = verify_erasure(db, sensitive, &[("wal", &raw)])?;
    Ok((scrub, redacted, report))
}

/// Resume an interrupted erasure campaign after a crash.
///
/// Analysis finds the most recent [`LogRecord::CampaignBegin`] with no
/// matching commit or cancel (a *committed* campaign's begin record has
/// been redacted away, so it cannot even be found — redaction doubles as
/// the idempotence guard). Returns `Ok(None)` when there is nothing to
/// resume; `corrupt` names torn pages discovered after the crash.
///
/// Recovery proceeds in manifest order:
///
/// 1. the in-flight step's bulk run is rolled forward by the ordinary
///    WAL [`recover_media`] (heals torn pages, rebuilds damaged
///    structures, redoes the phases from the logged victim rows);
/// 2. the remaining steps run exactly as the original campaign would
///    have run them;
/// 3. the scrub/redact/commit/verify tail re-runs from scratch — every
///    scrub write is idempotent, and a separator garbled by a torn write
///    is *repaired* by the canonical rewrite.
///
/// If the crash hit the scrub phase itself (every step already sealed),
/// torn pages are healed and the re-scrub restores them: scrub writes
/// never move live bytes, so a half-persisted scrub page is logically
/// identical to its pre-scrub self.
pub fn recover_campaign(
    db: &mut Database,
    log: &LogManager,
    workers: usize,
    corrupt: &[PageId],
) -> Result<Option<ErasureOutcome>, WalError> {
    let records = log.records()?;
    let Some(begin_idx) = records
        .iter()
        .rposition(|r| matches!(r, LogRecord::CampaignBegin { .. }))
    else {
        return Ok(None);
    };
    let (id, steps) = match &records[begin_idx] {
        LogRecord::CampaignBegin { id, steps } => (*id, steps.clone()),
        _ => unreachable!("rposition matched CampaignBegin"),
    };
    let tail = &records[begin_idx + 1..];
    let closed = tail.iter().any(|r| {
        matches!(r,
            LogRecord::CampaignCommit { id: c } if *c == id)
            || matches!(r,
            LogRecord::CampaignCancelled { id: c, .. } if *c == id)
    });
    if closed {
        return Ok(None);
    }
    let completed = tail
        .iter()
        .filter(|r| matches!(r, LogRecord::CampaignStepDone { id: c, .. } if *c == id))
        .count();

    // Re-derive the sensitive set without the victim rows the campaign
    // already destroyed: the manifest holds every step's key closure, and
    // each started step logged its victim rows before destructive work.
    let mut sensitive: BTreeSet<u64> = BTreeSet::new();
    for s in &steps {
        sensitive.extend(s.keys.iter().copied());
    }
    for r in tail {
        if let LogRecord::RowsMaterialized { rows } = r {
            for row in rows {
                sensitive.extend(row.attrs.iter().copied());
            }
        }
    }

    let mut deleted = 0usize;
    let mut steps_run = 0usize;
    if completed < steps.len() {
        // The crash hit step `completed` (its BulkBegin is the log's
        // last: steps run strictly in sequence, and a step's commit and
        // its StepDone are appended back-to-back with no I/O between).
        // Ordinary WAL recovery rolls that bulk run forward, healing and
        // rebuilding from any torn pages — which can only belong to the
        // in-flight table, the only one being written.
        let cur = &steps[completed];
        deleted += recover_media(db, cur.table as TableId, log, &[], corrupt)?;
        // Steps that never started (or only partially ran) still have
        // victims live in the recovered database; fold their attributes
        // into the proof set. (Rows the in-flight step already removed
        // were captured from its RowsMaterialized record above.)
        for s in &steps[completed..] {
            for row in victim_rows(db, s.table as TableId, s.attr as usize, &s.keys)? {
                sensitive.extend(row.attrs.iter().copied());
            }
        }
        // Re-run the in-flight step rather than just sealing it: if the
        // crash landed before the step's own BulkBegin (e.g. during the
        // campaign's sensitive-value capture), recovery above had nothing
        // to roll forward and the step must run for real. When recovery
        // *did* finish it, the re-run materializes zero victims and
        // no-ops — bulk deletes tolerate absent keys.
        for (i, s) in steps.iter().enumerate().skip(completed) {
            deleted += run_bulk_delete_parallel(
                db,
                s.table as TableId,
                s.attr as usize,
                &s.keys,
                log,
                CrashInjector::none(),
                workers,
            )?;
            log.append(&LogRecord::CampaignStepDone { id, step: i as u32 });
            steps_run += 1;
        }
    } else if !corrupt.is_empty() {
        // Crash with every step sealed: the tear either hit a scrub-phase
        // write (benign — scrub writes never change live bytes, so the
        // healed image plus the re-scrub below is already correct) or is
        // a step-era tear surfacing late, e.g. a page whose *final* flush
        // tore and that nothing re-read until the scrub swept it. The
        // page catalog's table-scoped owner tags attribute either case
        // precisely: index and hash pages rebuild from their own table's
        // surviving heap, heap/free/scratch pages heal in place.
        let last = steps.last().map(|s| s.table as TableId).unwrap_or(0);
        crate::driver::heal_and_rebuild(db, last, corrupt)?;
    }

    let sens: Vec<u64> = sensitive.into_iter().collect();
    let (scrub, redacted, report) = finish_campaign(db, log, id, &sens)?;
    Ok(Some(ErasureOutcome {
        id,
        steps_run,
        deleted,
        scrub,
        redacted,
        report,
    }))
}
