#![warn(missing_docs)]

//! Checkpointing and crash recovery for bulk deletes — paper §3.2.
//!
//! "We propose to make use of checkpoints to minimize the loss of work
//! during a system failure. ... To take full advantage of checkpointing and
//! to save the work done even after a system failure we propose to finish
//! the bulk deletion instead of rolling it back."
//!
//! * [`record`] — log records: materialized delete lists and victim rows,
//!   fuzzy checkpoints with tree metadata, per-structure completion,
//!   commit;
//! * [`log`] — an append-only, force-on-append log manager (stable storage
//!   in the simulation);
//! * [`driver`] — [`driver::run_bulk_delete`] with crash injection at every
//!   interesting point, and [`driver::recover`], which *rolls the bulk
//!   delete forward* and applies pending side-files afterwards.

pub mod campaign;
pub mod driver;
pub mod log;
pub mod record;

pub use campaign::{
    crash_at_every_io, crash_at_every_io_from, torn_write_at_every_io, CampaignReport,
    TornWriteReport,
};
pub use driver::{
    recover, recover_media, recover_media_report, run_bulk_delete, run_bulk_delete_parallel,
    CrashInjector, CrashSite, MediaRecovery, WalError,
};
pub use log::LogManager;
pub use record::{LogRecord, Lsn, MaterializedRow, StructureId, TreeMeta};
