#![warn(missing_docs)]

//! Checkpointing and crash recovery for bulk deletes — paper §3.2.
//!
//! "We propose to make use of checkpoints to minimize the loss of work
//! during a system failure. ... To take full advantage of checkpointing and
//! to save the work done even after a system failure we propose to finish
//! the bulk deletion instead of rolling it back."
//!
//! * [`record`] — log records: materialized delete lists and victim rows,
//!   fuzzy checkpoints with tree metadata, per-structure completion,
//!   commit;
//! * [`log`] — an append-only, force-on-append log manager (stable storage
//!   in the simulation);
//! * [`driver`] — [`driver::run_bulk_delete`] with crash injection at every
//!   interesting point, and [`driver::recover`], which *rolls the bulk
//!   delete forward* and applies pending side-files afterwards;
//! * [`erasure`] — durable erasure campaigns: the full cascade persisted
//!   as a manifest, each step recoverable, a physical scrub plus log
//!   redaction at commit, and a byte-level proof of deletion.

pub mod campaign;
pub mod driver;
pub mod erasure;
pub mod log;
pub mod record;

pub use campaign::{
    crash_at_every_io, crash_at_every_io_from, erasure_crash_at_every_io,
    erasure_torn_write_at_every_io, torn_write_at_every_io, CampaignReport, ErasureSweepReport,
    TornWriteReport,
};
pub use driver::{
    recover, recover_media, recover_media_report, run_bulk_delete, run_bulk_delete_parallel,
    run_maintenance_cycle, with_maintenance_bracket, CrashInjector, CrashSite, MediaRecovery,
    WalError,
};
pub use erasure::{recover_campaign, run_erasure_campaign, ErasureOutcome, KEY_BEARING_TAGS};
pub use log::LogManager;
pub use record::{CampaignStep, LogRecord, Lsn, MaterializedRow, StructureId, TreeMeta};
