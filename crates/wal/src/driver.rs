//! The recoverable bulk-delete driver: checkpoints, crash injection, and
//! roll-forward recovery (§3.2).
//!
//! Protocol:
//!
//! 1. **Materialize** — before any destructive work, the victim rows are
//!    resolved read-only (probe-index lookups + heap reads) and written to
//!    the log ("the results of the join variants ... should be materialized
//!    to stable storage"). Every later pass is derived from this durable
//!    list, which makes each pass idempotent.
//! 2. **Structure passes** — probe index, base table, then the remaining
//!    indices (unique first). After each pass all dirty pages are flushed
//!    and a checkpoint record is logged ("checkpoints are especially
//!    advisable when the processing of one structure is finished").
//! 3. **Recovery** — after a crash, the analysis pass finds the incomplete
//!    bulk delete, restores tree metadata from the last checkpoint, and
//!    **finishes the bulk deletion instead of rolling it back**, exactly as
//!    §3.2 prescribes. Pending side-files are applied only after the bulk
//!    delete completes.

use std::sync::Arc;
use std::sync::Mutex;

use bd_btree::{bulk_delete_sorted, BTree, Key, ReorgPolicy};
use bd_core::{Database, DbError, PhaseExecutor, PhaseTask, Table, TableId};
use bd_hashidx::HashIndex;
use bd_storage::{BufferPool, PageId, Rid, StorageError};
use bd_txn::sidefile::{apply_ops, SideOp};

use crate::log::LogManager;
use crate::record::{LogRecord, MaterializedRow, StructureId, TreeMeta};

/// Where the crash injector fires during [`run_bulk_delete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After the victim rows were materialized and checkpointed.
    AfterMaterialize,
    /// After structure pass `i` ran but *before* its completion was logged
    /// or its pages flushed (the hard case: partial, unlogged work).
    MidStructure(usize),
    /// After structure pass `i` was logged and checkpointed.
    AfterStructure(usize),
    /// After the `n`-th mid-structure progress record of pass `i` was
    /// logged (exercises resume-from-progress).
    AtProgress(usize, usize),
    /// Inside a disk access: the [`bd_storage::FaultPlan`]'s crash point
    /// fired ([`StorageError::SimulatedCrash`]). Unlike the sites above,
    /// this one can land anywhere — mid-chunk, mid-flush, inside a
    /// concurrent fan-out arm — which is exactly what the
    /// crash-at-every-I/O campaign sweeps over.
    InIo,
}

/// One-shot crash injector.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrashInjector {
    /// Where to crash, if anywhere.
    pub site: Option<CrashSite>,
}

impl CrashInjector {
    /// Crash at `site`.
    pub fn at(site: CrashSite) -> Self {
        CrashInjector { site: Some(site) }
    }

    /// No crash.
    pub fn none() -> Self {
        CrashInjector::default()
    }

    fn hit(&self, here: CrashSite) -> bool {
        self.site == Some(here)
    }
}

/// Driver errors.
#[derive(Debug)]
pub enum WalError {
    /// Engine error.
    Db(DbError),
    /// A crash fired (injector site or the disk's crash point); the
    /// database must be recovered.
    Crashed(CrashSite),
    /// The crash-at-every-I/O campaign found a crash point whose recovered
    /// state diverged from the fault-free reference run.
    Divergence {
        /// 1-based disk access the crash was injected at.
        crash_point: u64,
        /// The equivalence audit's findings.
        details: String,
    },
    /// A log record failed to decode (unknown tag or truncated bytes):
    /// the log is corrupt and recovery cannot trust it.
    CorruptLog(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Db(e) => write!(f, "{e}"),
            WalError::Crashed(site) => write!(f, "simulated crash at {site:?}"),
            WalError::Divergence {
                crash_point,
                details,
            } => write!(
                f,
                "recovery diverged after a crash at disk access {crash_point}: {details}"
            ),
            WalError::CorruptLog(detail) => write!(f, "corrupt log record: {detail}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<DbError> for WalError {
    fn from(e: DbError) -> Self {
        // A disk-level crash point is a crash, not an engine error: the
        // caller must run recovery, exactly as for an injector site.
        match e {
            DbError::Storage(StorageError::SimulatedCrash) => WalError::Crashed(CrashSite::InIo),
            e => WalError::Db(e),
        }
    }
}

impl From<StorageError> for WalError {
    fn from(e: StorageError) -> Self {
        WalError::from(DbError::Storage(e))
    }
}

/// The structure order: probe index, table, remaining B-tree indices with
/// unique ones first (§3.1.3), then hash indices by attribute. Hash phases
/// come last so the parallel driver's fan-out (non-unique B-tree arms plus
/// hash arms) stays a contiguous suffix. Deterministic so recovery
/// re-derives it.
fn phases(db: &Database, tid: TableId, probe_attr: usize) -> Result<Vec<StructureId>, WalError> {
    let table = db.table(tid)?;
    if table.index_on(probe_attr).is_none() {
        return Err(DbError::NoProbeIndex { attr: probe_attr }.into());
    }
    let mut rest: Vec<&bd_core::Index> = table
        .indices
        .iter()
        .filter(|i| i.def.attr != probe_attr)
        .collect();
    rest.sort_by_key(|i| (!i.def.unique, i.def.attr));
    let mut out = vec![StructureId::Probe, StructureId::Table];
    out.extend(rest.iter().map(|i| StructureId::Index(i.def.attr as u16)));
    let mut hashes: Vec<u16> = table
        .hash_indices
        .iter()
        .map(|h| h.def.attr as u16)
        .collect();
    hashes.sort_unstable();
    out.extend(hashes.into_iter().map(StructureId::Hash));
    Ok(out)
}

/// Read-only victim resolution: probe-index lookups, then heap reads in
/// RID order.
fn materialize(
    db: &Database,
    tid: TableId,
    probe_attr: usize,
    keys: &[Key],
) -> Result<Vec<MaterializedRow>, WalError> {
    let table = db.table(tid)?;
    let tree = &table
        .index_on(probe_attr)
        .ok_or(DbError::NoProbeIndex { attr: probe_attr })?
        .tree;
    // One sorted merge over the leaf chain instead of a random probe per
    // key (the read-only analogue of the key-predicate bulk delete).
    let mut rids: Vec<Rid> = bd_btree::lookup_keys_sorted(tree, &{
        let mut k = keys.to_vec();
        k.sort_unstable();
        k
    })
    .map_err(DbError::Storage)?
    .into_iter()
    .map(|(_, rid)| rid)
    .collect();
    rids.sort_unstable();
    let schema = table.schema;
    let rows = rids
        .into_iter()
        .map(|rid| {
            let bytes = table.heap.get(rid).map_err(DbError::Storage)?;
            Ok(MaterializedRow {
                rid,
                attrs: schema.decode(&bytes).attrs,
            })
        })
        .collect::<Result<Vec<_>, WalError>>()?;
    Ok(rows)
}

/// Flush everything and log a checkpoint with current tree metadata.
fn checkpoint(db: &mut Database, tid: TableId, log: &LogManager) -> Result<(), WalError> {
    db.pool().flush_all().map_err(DbError::Storage)?;
    let table = db.table(tid)?;
    let trees = table
        .indices
        .iter()
        .map(|i| TreeMeta {
            attr: i.def.attr as u16,
            root: i.tree.root_page(),
            height: i.tree.height() as u16,
        })
        .collect();
    log.append(&LogRecord::Checkpoint { trees });
    log.append(&LogRecord::CatalogSnapshot {
        catalog: db.pool().catalog(),
    });
    Ok(())
}

/// Victims processed between two mid-structure progress records.
const PROGRESS_CHUNK: usize = 2048;

/// Run one structure pass, chunked: after every [`PROGRESS_CHUNK`] victims
/// the dirty pages are flushed and a [`LogRecord::Progress`] is written, so
/// a crash loses at most one chunk of work ("the last processed RID or
/// key-value ... stored in the log ... will speed up recovery"). `start`
/// skips victims a pre-crash run already durably processed. Lenient against
/// already-deleted entries so the first (possibly half-flushed) chunk can
/// be re-run.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    phase: StructureId,
    rows: &[MaterializedRow],
    start: usize,
    log: &LogManager,
    phase_idx: usize,
    crash: CrashInjector,
) -> Result<(), WalError> {
    // Per-structure victim lists, sorted in that structure's order.
    let sorted_pairs = |attr: usize| -> Vec<(Key, Rid)> {
        let mut pairs: Vec<(Key, Rid)> = rows.iter().map(|r| (r.attrs[attr], r.rid)).collect();
        pairs.sort_unstable();
        pairs
    };
    let total = rows.len();
    let mut done = start;
    let mut progress_records = 0usize;
    while done < total || (total == 0 && done == 0) {
        let end = (done + PROGRESS_CHUNK).min(total);
        {
            let table = db.table_mut(tid)?;
            match phase {
                StructureId::Probe => {
                    let pairs = sorted_pairs(probe_attr);
                    let tree = &mut table
                        .index_on_mut(probe_attr)
                        .expect("probe index present")
                        .tree;
                    bulk_delete_sorted(tree, &pairs[done..end], ReorgPolicy::FreeAtEmpty)
                        .map_err(DbError::Storage)?;
                }
                StructureId::Table => {
                    let rids: Vec<Rid> = rows[done..end].iter().map(|r| r.rid).collect();
                    table
                        .heap
                        .bulk_delete_sorted_lenient(&rids)
                        .map_err(DbError::Storage)?;
                }
                StructureId::Index(attr) => {
                    let pairs = sorted_pairs(attr as usize);
                    let tree = &mut table
                        .index_on_mut(attr as usize)
                        .expect("index present")
                        .tree;
                    bulk_delete_sorted(tree, &pairs[done..end], ReorgPolicy::FreeAtEmpty)
                        .map_err(DbError::Storage)?;
                }
                StructureId::Hash(attr) => {
                    // Hash indices are updated the traditional way, one
                    // chain walk per victim, in materialized-row order (the
                    // same chunking the parallel arm and recovery use).
                    // Deleting an already-absent entry is a no-op, so
                    // re-running a chunk is safe.
                    let hi = table
                        .hash_indices
                        .iter_mut()
                        .find(|h| h.def.attr == attr as usize)
                        .expect("hash index present");
                    for row in &rows[done..end] {
                        hi.index
                            .delete(row.attrs[attr as usize], row.rid)
                            .map_err(DbError::Storage)?;
                    }
                }
                StructureId::Temp | StructureId::Spatial(_) | StructureId::Lsm(_) => {
                    unreachable!("scratch, spatial and LSM structures are never bulk-delete phases")
                }
            }
        }
        done = end;
        if done < total {
            // Mid-structure checkpoint: flush, then make progress durable.
            db.pool().flush_all().map_err(DbError::Storage)?;
            log.append(&LogRecord::Progress {
                structure: phase,
                done: done as u32,
            });
            progress_records += 1;
            if crash.hit(CrashSite::AtProgress(phase_idx, progress_records)) {
                return Err(WalError::Crashed(CrashSite::AtProgress(
                    phase_idx,
                    progress_records,
                )));
            }
        }
        if total == 0 {
            break;
        }
    }
    Ok(())
}

/// Run a recoverable bulk delete, logging every step. On a simulated crash
/// the error carries the site; the caller then simulates volatile-memory
/// loss (`db.pool().crash()`) and calls [`recover`].
pub fn run_bulk_delete(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    log: &LogManager,
    crash: CrashInjector,
) -> Result<usize, WalError> {
    let mut keys = d_keys.to_vec();
    keys.sort_unstable();
    keys.dedup();
    log.append(&LogRecord::BulkBegin {
        probe_attr: probe_attr as u16,
        keys: keys.clone(),
    });

    let rows = materialize(db, tid, probe_attr, &keys)?;
    log.append(&LogRecord::RowsMaterialized { rows: rows.clone() });
    checkpoint(db, tid, log)?;
    if crash.hit(CrashSite::AfterMaterialize) {
        return Err(WalError::Crashed(CrashSite::AfterMaterialize));
    }

    for (i, phase) in phases(db, tid, probe_attr)?.into_iter().enumerate() {
        run_serial_phase(db, tid, probe_attr, phase, &rows, log, i, crash)?;
    }

    log.append(&LogRecord::BulkCommit);
    Ok(rows.len())
}

/// One serial structure pass end-to-end: the chunked pass, a flush that
/// makes the final chunk durable *before* completion is logged (a
/// disk-level crash between pass and flush must re-run the pass on
/// recovery, never skip it), the `StructureDone` record, and a checkpoint.
#[allow(clippy::too_many_arguments)]
fn run_serial_phase(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    phase: StructureId,
    rows: &[MaterializedRow],
    log: &LogManager,
    i: usize,
    crash: CrashInjector,
) -> Result<(), WalError> {
    run_phase(db, tid, probe_attr, phase, rows, 0, log, i, crash)?;
    if crash.hit(CrashSite::MidStructure(i)) {
        return Err(WalError::Crashed(CrashSite::MidStructure(i)));
    }
    db.pool().flush_all().map_err(DbError::Storage)?;
    log.append(&LogRecord::StructureDone { structure: phase });
    checkpoint(db, tid, log)?;
    if crash.hit(CrashSite::AfterStructure(i)) {
        return Err(WalError::Crashed(CrashSite::AfterStructure(i)));
    }
    Ok(())
}

/// One concurrent fan-out arm of [`run_bulk_delete_parallel`]: the chunked
/// pass over a single structure (a non-unique B-tree index or a hash
/// index), with per-chunk flushes and durable progress records, ending in
/// the arm's own `StructureDone`. `chunk(lo, hi)` deletes victims
/// `lo..hi` of the arm's victim list. The flush before `StructureDone` is
/// what makes the arm's work durable — the group checkpoint runs only
/// after every arm has joined.
#[allow(clippy::too_many_arguments)]
fn run_fanout_arm(
    pool: &Arc<BufferPool>,
    total: usize,
    phase: StructureId,
    phase_idx: usize,
    log: &LogManager,
    crash: CrashInjector,
    site: &Mutex<Option<CrashSite>>,
    mut chunk: impl FnMut(usize, usize) -> Result<(), StorageError>,
) -> Result<(), StorageError> {
    let trip = |here: CrashSite| -> Result<(), StorageError> {
        if crash.hit(here) {
            *site.lock().expect("crash site slot") = Some(here);
            return Err(StorageError::SimulatedCrash);
        }
        Ok(())
    };
    let mut done = 0usize;
    let mut progress_records = 0usize;
    loop {
        let end = (done + PROGRESS_CHUNK).min(total);
        chunk(done, end)?;
        done = end;
        if done >= total {
            break;
        }
        // `flush_all` skips frames pinned by sibling arms; this arm holds
        // no pins here, so its chunk is fully durable before the progress
        // record claims it — unless a sibling pinned one of its pages, which
        // is why recovery backs off a chunk when it resumes from progress.
        pool.flush_all()?;
        log.append(&LogRecord::Progress {
            structure: phase,
            done: done as u32,
        });
        progress_records += 1;
        trip(CrashSite::AtProgress(phase_idx, progress_records))?;
    }
    trip(CrashSite::MidStructure(phase_idx))?;
    pool.flush_all()?;
    log.append(&LogRecord::StructureDone { structure: phase });
    Ok(())
}

/// A fan-out arm's mutable handle: a B-tree or a hash index.
enum Arm<'a> {
    Tree(&'a mut BTree),
    Hash(&'a mut HashIndex),
}

/// [`run_bulk_delete`] with the non-unique index passes dispatched to up to
/// `workers` threads — the recoverable analogue of the strategy layer's
/// `vertical_parallel`. The serial prefix (materialize, probe, table,
/// unique indices — §3.1's ordering) is identical to the serial driver;
/// the fan-out arms log their own progress and completion records into the
/// shared log, and one group checkpoint follows the join. The executor
/// runs [`PhaseExecutor::without_degradation`]: this driver's fault story
/// is roll-forward recovery from the log, so a crashed arm must fail the
/// statement and leave recovery to [`recover`], not retry behind the
/// log's back.
pub fn run_bulk_delete_parallel(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    log: &LogManager,
    crash: CrashInjector,
    workers: usize,
) -> Result<usize, WalError> {
    if workers <= 1 {
        return run_bulk_delete(db, tid, probe_attr, d_keys, log, crash);
    }
    let mut keys = d_keys.to_vec();
    keys.sort_unstable();
    keys.dedup();
    log.append(&LogRecord::BulkBegin {
        probe_attr: probe_attr as u16,
        keys: keys.clone(),
    });

    let rows = materialize(db, tid, probe_attr, &keys)?;
    log.append(&LogRecord::RowsMaterialized { rows: rows.clone() });
    checkpoint(db, tid, log)?;
    if crash.hit(CrashSite::AfterMaterialize) {
        return Err(WalError::Crashed(CrashSite::AfterMaterialize));
    }

    // Serial prefix: probe, table, then unique indices — `phases` orders
    // unique indices directly after the table, so the prefix is contiguous.
    let all = phases(db, tid, probe_attr)?;
    let n_serial = {
        let table = db.table(tid)?;
        all.iter()
            .take_while(|p| match p {
                StructureId::Probe | StructureId::Table => true,
                StructureId::Index(attr) => table
                    .index_on(*attr as usize)
                    .map(|i| i.def.unique)
                    .unwrap_or(false),
                StructureId::Hash(_)
                | StructureId::Temp
                | StructureId::Spatial(_)
                | StructureId::Lsm(_) => false,
            })
            .count()
    };
    for (i, phase) in all[..n_serial].iter().enumerate() {
        run_serial_phase(db, tid, probe_attr, *phase, &rows, log, i, crash)?;
    }

    // Fan-out: one arm per remaining structure — the non-unique B-tree
    // indices and every hash index.
    let fan: Vec<(usize, StructureId)> = all[n_serial..]
        .iter()
        .enumerate()
        .map(|(j, p)| match p {
            StructureId::Index(_) | StructureId::Hash(_) => (n_serial + j, *p),
            _ => unreachable!("serial prefix covers probe and table"),
        })
        .collect();
    if !fan.is_empty() {
        let pair_lists: Vec<Vec<(Key, Rid)>> = fan
            .iter()
            .map(|&(_, phase)| match phase {
                // B-tree arms delete in key order; hash arms keep the
                // materialized-row order so their chunk boundaries match
                // the serial driver's and recovery's.
                StructureId::Index(attr) => {
                    let mut pairs: Vec<(Key, Rid)> = rows
                        .iter()
                        .map(|r| (r.attrs[attr as usize], r.rid))
                        .collect();
                    pairs.sort_unstable();
                    pairs
                }
                StructureId::Hash(attr) => rows
                    .iter()
                    .map(|r| (r.attrs[attr as usize], r.rid))
                    .collect(),
                _ => unreachable!("fan holds only index and hash phases"),
            })
            .collect();
        let site_slot: Mutex<Option<CrashSite>> = Mutex::new(None);
        let pool = db.pool().clone();
        let fan_result = {
            let Table {
                indices,
                hash_indices,
                ..
            } = db.table_mut(tid)?;
            let rank_of = |p: StructureId| fan.iter().position(|&(_, q)| q == p);
            let mut arms: Vec<(usize, Arm<'_>)> = indices
                .iter_mut()
                .filter_map(|ix| {
                    rank_of(StructureId::Index(ix.def.attr as u16))
                        .map(|r| (r, Arm::Tree(&mut ix.tree)))
                })
                .chain(hash_indices.iter_mut().filter_map(|h| {
                    rank_of(StructureId::Hash(h.def.attr as u16))
                        .map(|r| (r, Arm::Hash(&mut h.index)))
                }))
                .collect();
            arms.sort_by_key(|&(r, _)| r);

            let mut exec = PhaseExecutor::new(workers).without_degradation();
            let mut tasks: Vec<PhaseTask> = Vec::new();
            for ((rank, mut arm), pairs) in arms.into_iter().zip(pair_lists.iter()) {
                let (phase_idx, phase) = fan[rank];
                let pool = pool.clone();
                let site_slot = &site_slot;
                let label = match phase {
                    StructureId::Hash(attr) => format!("wal bd hash {attr}"),
                    StructureId::Index(attr) => format!("wal bd index {attr}"),
                    _ => unreachable!("fan holds only index and hash phases"),
                };
                tasks.push(PhaseTask::new(label, move || {
                    let run = |chunk: &mut dyn FnMut(usize, usize) -> Result<(), StorageError>| {
                        run_fanout_arm(
                            &pool,
                            pairs.len(),
                            phase,
                            phase_idx,
                            log,
                            crash,
                            site_slot,
                            chunk,
                        )
                    };
                    match &mut arm {
                        Arm::Tree(tree) => run(&mut |lo, hi| {
                            bulk_delete_sorted(tree, &pairs[lo..hi], ReorgPolicy::FreeAtEmpty)
                                .map(|_| ())
                        }),
                        Arm::Hash(h) => run(&mut |lo, hi| {
                            for &(k, rid) in &pairs[lo..hi] {
                                h.delete(k, rid)?;
                            }
                            Ok(())
                        }),
                    }
                }));
            }
            exec.fan_out(tasks)
        };
        if let Err(e) = fan_result {
            // An injector site inside an arm travels back as
            // `SimulatedCrash` plus the site slot. A disk-level crash point
            // (`FaultPlan::crash_at_access`) firing inside an arm's I/O also
            // surfaces as `SimulatedCrash` but never touches the slot — by
            // contract the empty slot maps to `CrashSite::InIo` via `From`
            // (pinned by `arm_crash_with_empty_site_slot_maps_to_in_io` in
            // tests/campaign.rs).
            if e == StorageError::SimulatedCrash {
                if let Some(site) = *site_slot.lock().expect("crash site slot") {
                    return Err(WalError::Crashed(site));
                }
            }
            return Err(e.into());
        }
        // One group checkpoint covers every arm's completed pass.
        checkpoint(db, tid, log)?;
        for &(phase_idx, _) in &fan {
            if crash.hit(CrashSite::AfterStructure(phase_idx)) {
                return Err(WalError::Crashed(CrashSite::AfterStructure(phase_idx)));
            }
        }
    }

    log.append(&LogRecord::BulkCommit);
    Ok(rows.len())
}

/// Recover after a crash: finish any incomplete bulk delete (roll forward),
/// then apply pending side-file operations (§3.2: "the side-files are
/// applied to the indices when the bulk deleter has finished"). Returns the
/// number of victim rows the completed bulk delete covered (0 if the log
/// held no incomplete bulk delete).
pub fn recover(
    db: &mut Database,
    tid: TableId,
    log: &LogManager,
    pending_side_ops: &[(usize, Vec<SideOp>)],
) -> Result<usize, WalError> {
    recover_media(db, tid, log, pending_side_ops, &[])
}

/// Which structures of the table lost pages to media damage, as classified
/// by the page catalog: one entry per damaged structure, never "all the
/// B-trees".
#[derive(Debug, Default)]
struct MediaDamage {
    /// A heap page tore.
    heap: bool,
    /// The home table's B-tree indices (by attribute) that lost a page.
    tree_attrs: Vec<usize>,
    /// The home table's hash indices (by attribute) whose chains lost a
    /// page.
    hash_attrs: Vec<usize>,
    /// Table-scoped owner tags of *other* tables' damaged structures. A
    /// multi-statement erasure campaign can surface another table's latent
    /// tear long after that table's step committed; the owner tag names
    /// both the table and the attribute, so each is rebuilt precisely.
    foreign: Vec<StructureId>,
}

impl MediaDamage {
    fn is_empty(&self) -> bool {
        !self.heap
            && self.tree_attrs.is_empty()
            && self.hash_attrs.is_empty()
            && self.foreign.is_empty()
    }

    /// True when `s`'s on-disk pages were damaged: its logged progress
    /// cannot be trusted and its pass must re-run from scratch. The probe
    /// phase runs over the probe *index*, so damage to `Index(probe_attr)`
    /// covers it.
    fn covers(&self, s: StructureId, probe_attr: usize) -> bool {
        match s {
            StructureId::Table => self.heap,
            StructureId::Probe => self.tree_attrs.contains(&probe_attr),
            StructureId::Index(a) => self.tree_attrs.contains(&(a as usize)),
            StructureId::Hash(a) => self.hash_attrs.contains(&(a as usize)),
            StructureId::Temp | StructureId::Spatial(_) | StructureId::Lsm(_) => false,
        }
    }
}

/// What media recovery did, for reporting and for the fault campaigns'
/// structure-precision assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MediaRecovery {
    /// Attributes of B-tree indices rebuilt by bulk load.
    pub rebuilt_trees: Vec<usize>,
    /// Attributes of hash indices rebuilt by re-insertion.
    pub rebuilt_hashes: Vec<usize>,
    /// A torn heap page was healed in place (the table pass re-runs; the
    /// heap itself is never rebuilt).
    pub heap_damaged: bool,
    /// Torn pages that were *free* in the catalog: healed, nothing rebuilt.
    pub healed_free: usize,
    /// Torn scratch/spatial pages: healed and skipped, their contents are
    /// outside the bulk delete's structures.
    pub healed_scratch: usize,
}

impl MediaRecovery {
    /// Total structures rebuilt (B-trees plus hash chains).
    pub fn structures_rebuilt(&self) -> usize {
        self.rebuilt_trees.len() + self.rebuilt_hashes.len()
    }
}

/// Heal and classify torn pages **by catalog lookup**. Each corrupt page's
/// current (half-written) image is accepted so the page is readable again,
/// then its catalogued owner decides what recovery must do: a free page
/// needs nothing, a heap page re-runs the table pass, an index or hash page
/// condemns exactly that one structure. This replaces the old heuristics
/// (heap page-list membership, hash chain walks, "anything else is the
/// B-trees") that rebuilt every tree for any unattributed tear.
fn classify_media_damage(
    db: &mut Database,
    home: TableId,
    corrupt: &[PageId],
    report: &mut MediaRecovery,
) -> Result<MediaDamage, WalError> {
    let mut damage = MediaDamage::default();
    if corrupt.is_empty() {
        return Ok(damage);
    }
    db.pool()
        .with_disk(|d| -> Result<(), StorageError> {
            for &pid in corrupt {
                d.accept_torn_page(pid)?;
            }
            Ok(())
        })
        .map_err(DbError::Storage)?;
    let catalog = db.pool().catalog();
    for &pid in corrupt {
        match catalog.owner(pid) {
            None => report.healed_free += 1,
            Some(StructureId::Table) => damage.heap = true,
            Some(s @ (StructureId::Index(_) | StructureId::Hash(_))) => {
                let (t, a) = s
                    .scoped_parts()
                    .expect("index/hash owners carry a table scope");
                if t == home {
                    match s {
                        StructureId::Index(_) => damage.tree_attrs.push(a),
                        _ => damage.hash_attrs.push(a),
                    }
                } else {
                    damage.foreign.push(s);
                }
            }
            Some(StructureId::Temp) | Some(StructureId::Spatial(_)) | Some(StructureId::Lsm(_)) => {
                report.healed_scratch += 1
            }
            Some(StructureId::Probe) => {
                unreachable!("probe is a phase role; its pages are catalogued as Index")
            }
        }
    }
    damage.tree_attrs.sort_unstable();
    damage.tree_attrs.dedup();
    damage.hash_attrs.sort_unstable();
    damage.hash_attrs.dedup();
    damage.foreign.sort_unstable_by_key(|s| s.scoped_parts());
    damage.foreign.dedup();
    report.heap_damaged = damage.heap;
    Ok(damage)
}

/// Run `body` inside a durable maintenance bracket on `structure` (a
/// table-scoped owner tag, e.g. [`StructureId::index_of`]'s result).
/// [`LogRecord::MaintainBegin`] is appended first; after a successful run
/// the dirty pages are flushed and the bracket is closed with
/// [`LogRecord::MaintainEnd`]. Maintenance rewrites pages without logging
/// their images, so on an error or crash the bracket stays open and the
/// next [`recover`] rebuilds the structure from the heap instead of
/// trusting a half-applied rewrite.
pub fn with_maintenance_bracket<T>(
    db: &mut Database,
    log: &LogManager,
    structure: StructureId,
    body: impl FnOnce(&mut Database) -> Result<T, WalError>,
) -> Result<T, WalError> {
    log.append(&LogRecord::MaintainBegin { structure });
    let out = body(db)?;
    db.pool().flush_all().map_err(DbError::Storage)?;
    log.append(&LogRecord::MaintainEnd { structure });
    Ok(out)
}

/// One durable maintenance cycle over table `tid`: release empty heap
/// pages, run each index's pack pass to completion and sweep its inner
/// chains inside that index's maintenance bracket, then recycle free pages
/// and prewarm. Only the bracketed phases rewrite live pages without
/// logging them; heap release is detach-only and recycling writes only
/// free pages, so a crash there needs no rebuild at all.
pub fn run_maintenance_cycle(
    db: &mut Database,
    tid: TableId,
    log: &LogManager,
    m: &mut bd_core::Maintainer,
) -> Result<(), WalError> {
    m.release_heap(db, tid)?;
    let attrs: Vec<usize> = db.table(tid)?.indices.iter().map(|i| i.def.attr).collect();
    for &attr in &attrs {
        with_maintenance_bracket(db, log, StructureId::index_of(tid, attr), |db| {
            while !m.pack_index(db, tid, attr)? {}
            m.sweep_index(db, tid, attr)?;
            Ok(())
        })?;
    }
    m.recycle(db)?;
    m.prewarm(db)?;
    m.end_cycle();
    Ok(())
}

/// Structures with an open maintenance bracket: a `MaintainBegin` not
/// followed by a matching `MaintainEnd`. Their pages may hold a
/// half-applied maintenance rewrite and cannot be trusted.
fn unclosed_maintenance(records: &[LogRecord]) -> Vec<StructureId> {
    let mut open: Vec<StructureId> = Vec::new();
    for r in records {
        match r {
            LogRecord::MaintainBegin { structure } if !open.contains(structure) => {
                open.push(*structure);
            }
            LogRecord::MaintainEnd { structure } => open.retain(|s| s != structure),
            _ => {}
        }
    }
    open
}

/// Fold the structures named by open maintenance brackets into the media
/// damage set, so the normal rebuild path covers them.
fn absorb_maintenance_damage(damage: &mut MediaDamage, open: &[StructureId], home: TableId) {
    for &s in open {
        match s {
            StructureId::Table => damage.heap = true,
            StructureId::Index(_) | StructureId::Hash(_) => {
                let (t, a) = s
                    .scoped_parts()
                    .expect("maintenance brackets carry table-scoped owner tags");
                if t == home {
                    match s {
                        StructureId::Index(_) => damage.tree_attrs.push(a),
                        _ => damage.hash_attrs.push(a),
                    }
                } else {
                    damage.foreign.push(s);
                }
            }
            StructureId::Probe
            | StructureId::Temp
            | StructureId::Spatial(_)
            | StructureId::Lsm(_) => {}
        }
    }
    damage.tree_attrs.sort_unstable();
    damage.tree_attrs.dedup();
    damage.hash_attrs.sort_unstable();
    damage.hash_attrs.dedup();
    damage.foreign.sort_unstable_by_key(|s| s.scoped_parts());
    damage.foreign.dedup();
}

/// Re-own any catalog-free page that is still reachable from a structure.
///
/// A catalog free is durable disk metadata the instant it happens, but the
/// page writes that *detach* the freed page (parent patch, sibling unlink)
/// go through cached frames and can be lost at a crash. The redo passes are
/// lenient and may find nothing left to delete in such a page, leaving it
/// referenced yet free. Walking the real structures and re-owning what they
/// reach restores the catalog invariant "free ⇒ unreachable" that the
/// audit (and the next media recovery) depends on.
fn reconcile_catalog(db: &mut Database, tid: TableId) -> Result<(), WalError> {
    let table = db.table(tid)?;
    let mut reachable: Vec<(PageId, StructureId)> = Vec::new();
    for &pid in table.heap.page_ids() {
        reachable.push((pid, StructureId::Table));
    }
    for ix in &table.indices {
        let owner = StructureId::index_of(tid, ix.def.attr);
        for pid in ix.tree.pages().map_err(DbError::Storage)? {
            reachable.push((pid, owner));
        }
    }
    for h in &table.hash_indices {
        let owner = StructureId::hash_of(tid, h.def.attr);
        for pid in h.index.pages().map_err(DbError::Storage)? {
            reachable.push((pid, owner));
        }
    }
    db.pool().with_disk(|d| {
        for (pid, owner) in reachable {
            if d.catalog().owner(pid).is_none() {
                d.set_page_owner(pid, owner);
            }
        }
    });
    Ok(())
}

/// [`recover`] extended with media recovery for torn pages. `corrupt` names
/// pages whose reads failed with [`StorageError::ChecksumMismatch`] (or
/// that a scrub found damaged). Beyond the crash protocol, this pass:
///
/// 1. heals each torn page (accepts the half-written image so it reads),
/// 2. looks the page up in the page catalog and **rebuilds only the
///    structure that owns it** — the torn image is never trusted; a damaged
///    B-tree is bulk-loaded and a damaged hash index re-inserted from the
///    surviving heap, while a torn *free* page is healed with no rebuild at
///    all,
/// 3. discards the damaged structures' logged progress so their passes
///    re-run from the WAL's materialized rows, even when the log already
///    shows `BulkCommit` (commit promises logical durability; a torn page
///    is media damage discovered later),
/// 4. finishes by reconciling the catalog against the real structures (see
///    [`reconcile_catalog`]).
///
/// A torn *heap* page needs no rebuild: deletes only clear slot directory
/// entries in the page's first half, so the healed image is a valid slotted
/// page and the re-run table pass re-clears whatever the tear resurrected.
/// Expects to run after `db.pool().crash()` — cache loss is what surfaces
/// tears in the first place.
pub fn recover_media(
    db: &mut Database,
    tid: TableId,
    log: &LogManager,
    pending_side_ops: &[(usize, Vec<SideOp>)],
    corrupt: &[PageId],
) -> Result<usize, WalError> {
    recover_media_report(db, tid, log, pending_side_ops, corrupt).map(|(n, _)| n)
}

/// [`recover_media`], also returning the [`MediaRecovery`] report (what was
/// rebuilt, what was healed for free). The fault campaigns use the report
/// to prove recovery never rebuilds an undamaged structure.
pub fn recover_media_report(
    db: &mut Database,
    tid: TableId,
    log: &LogManager,
    pending_side_ops: &[(usize, Vec<SideOp>)],
    corrupt: &[PageId],
) -> Result<(usize, MediaRecovery), WalError> {
    let mut report = MediaRecovery::default();
    let mut damage = classify_media_damage(db, tid, corrupt, &mut report)?;
    let records = log.records()?;
    // An open maintenance bracket means the daemon's unlogged page rewrite
    // may be half-applied: the bracketed structure is damage, rebuilt from
    // the heap exactly like a torn page's owner.
    let open_maintenance = unclosed_maintenance(&records);
    absorb_maintenance_damage(&mut damage, &open_maintenance, tid);
    let close_brackets = |log: &LogManager| {
        for &s in &open_maintenance {
            log.append(&LogRecord::MaintainEnd { structure: s });
        }
    };
    // Analysis: locate the last BulkBegin and what followed it.
    let begin_idx = records
        .iter()
        .rposition(|r| matches!(r, LogRecord::BulkBegin { .. }));
    let Some(begin_idx) = begin_idx else {
        rebuild_damaged(db, tid, &damage, &mut report)?;
        apply_side(db, tid, pending_side_ops)?;
        if !damage.is_empty() {
            reconcile_catalog(db, tid)?;
            db.pool().flush_all().map_err(DbError::Storage)?;
        }
        close_brackets(log);
        return Ok((0, report));
    };
    let (probe_attr, keys) = match &records[begin_idx] {
        LogRecord::BulkBegin { probe_attr, keys } => (*probe_attr as usize, keys.clone()),
        _ => unreachable!(),
    };
    let tail = &records[begin_idx + 1..];
    if tail.iter().any(|r| matches!(r, LogRecord::BulkCommit)) && damage.is_empty() {
        apply_side(db, tid, pending_side_ops)?;
        close_brackets(log);
        return Ok((0, report));
    }

    let mut rows: Option<Vec<MaterializedRow>> = None;
    let mut done: Vec<StructureId> = Vec::new();
    let mut last_ckpt: Option<Vec<TreeMeta>> = None;
    let mut progress: std::collections::HashMap<StructureId, usize> =
        std::collections::HashMap::new();
    for r in tail {
        match r {
            LogRecord::RowsMaterialized { rows: r } => rows = Some(r.clone()),
            LogRecord::StructureDone { structure } => done.push(*structure),
            LogRecord::Checkpoint { trees } => last_ckpt = Some(trees.clone()),
            LogRecord::Progress { structure, done } => {
                let e = progress.entry(*structure).or_insert(0);
                *e = (*e).max(*done as usize);
            }
            _ => {}
        }
    }
    // A media-damaged structure is rebuilt below; its logged completion and
    // progress describe pages that no longer exist.
    done.retain(|s| !damage.covers(*s, probe_attr));
    progress.retain(|s, _| !damage.covers(*s, probe_attr));

    // Restore durable handles: tree metadata from the last checkpoint,
    // counters recounted from the disk state. Damaged structures skip both
    // (their checkpointed metadata points into torn pages) and are rebuilt
    // from the heap instead.
    {
        let table = db.table_mut(tid)?;
        if let Some(metas) = &last_ckpt {
            for meta in metas {
                if damage.tree_attrs.contains(&(meta.attr as usize)) {
                    continue;
                }
                if let Some(index) = table.index_on_mut(meta.attr as usize) {
                    index.tree = BTree::restore(
                        index.tree.pool().clone(),
                        index.def.config,
                        meta.root,
                        meta.height as usize,
                        StructureId::index_of(tid, meta.attr as usize),
                    )
                    .map_err(DbError::Storage)?;
                }
            }
        } else {
            for index in &mut table.indices {
                if damage.tree_attrs.contains(&index.def.attr) {
                    continue;
                }
                index.tree.recount().map_err(DbError::Storage)?;
            }
        }
        table.heap.recount().map_err(DbError::Storage)?;
        for h in &mut table.hash_indices {
            if damage.hash_attrs.contains(&h.def.attr) {
                continue;
            }
            h.index.recount().map_err(DbError::Storage)?;
        }
    }
    rebuild_damaged(db, tid, &damage, &mut report)?;

    // Redo: finish the bulk delete from the materialized rows.
    let rows = match rows {
        Some(r) => r,
        None => {
            // Crash hit before materialization was logged: no destructive
            // work has happened; materialize now.
            let r = materialize(db, tid, probe_attr, &keys)?;
            log.append(&LogRecord::RowsMaterialized { rows: r.clone() });
            checkpoint(db, tid, log)?;
            r
        }
    };
    for (i, phase) in phases(db, tid, probe_attr)?.into_iter().enumerate() {
        if done.contains(&phase) {
            continue;
        }
        // Resume from the last durable progress record for this structure,
        // backing off one chunk so the possibly half-flushed chunk re-runs:
        // under the parallel driver a sibling arm can hold a pin during
        // this structure's pre-progress flush, leaving part of the claimed
        // chunk unflushed (the passes are lenient, so re-running is safe).
        let start = progress
            .get(&phase)
            .copied()
            .unwrap_or(0)
            .saturating_sub(PROGRESS_CHUNK);
        run_phase(
            db,
            tid,
            probe_attr,
            phase,
            &rows,
            start,
            log,
            i,
            CrashInjector::none(),
        )?;
        db.pool().flush_all().map_err(DbError::Storage)?;
        log.append(&LogRecord::StructureDone { structure: phase });
        checkpoint(db, tid, log)?;
    }
    log.append(&LogRecord::BulkCommit);

    apply_side(db, tid, pending_side_ops)?;
    reconcile_catalog(db, tid)?;
    db.pool().flush_all().map_err(DbError::Storage)?;
    close_brackets(log);
    Ok((rows.len(), report))
}

/// Rebuild each damaged structure from the surviving heap: the structure's
/// old pages are returned to the free set first (the rebuild allocates
/// fresh ones), then a B-tree is bulk-loaded and a hash index re-inserted.
/// Foreign damage (another table's structure, identified by its
/// table-scoped owner tag) is rebuilt the same way from *its* table's heap.
fn rebuild_damaged(
    db: &mut Database,
    tid: TableId,
    damage: &MediaDamage,
    report: &mut MediaRecovery,
) -> Result<(), WalError> {
    for &attr in &damage.tree_attrs {
        rebuild_tree(db, tid, attr, report)?;
    }
    for &attr in &damage.hash_attrs {
        rebuild_hash(db, tid, attr, report)?;
    }
    for &owner in &damage.foreign {
        let (t, a) = owner.scoped_parts().expect("foreign damage is index/hash");
        match owner {
            StructureId::Index(_) => rebuild_tree(db, t, a, report)?,
            StructureId::Hash(_) => rebuild_hash(db, t, a, report)?,
            _ => unreachable!("foreign damage is index/hash"),
        }
    }
    Ok(())
}

fn rebuild_tree(
    db: &mut Database,
    tid: TableId,
    attr: usize,
    report: &mut MediaRecovery,
) -> Result<(), WalError> {
    let pool = db.pool().clone();
    let table = db.table_mut(tid)?;
    let dump = table.heap.dump().map_err(DbError::Storage)?;
    let schema = table.schema;
    let Some(index) = table.index_on_mut(attr) else {
        return Ok(());
    };
    pool.free_owned(StructureId::index_of(tid, attr));
    let mut pairs: Vec<(Key, Rid)> = dump
        .iter()
        .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid))
        .collect();
    pairs.sort_unstable();
    index.tree = bd_btree::bulk_load(
        pool.clone(),
        index.def.config,
        &pairs,
        index.def.fill,
        StructureId::index_of(tid, attr),
    )
    .map_err(DbError::Storage)?;
    report.rebuilt_trees.push(attr);
    Ok(())
}

fn rebuild_hash(
    db: &mut Database,
    tid: TableId,
    attr: usize,
    report: &mut MediaRecovery,
) -> Result<(), WalError> {
    let pool = db.pool().clone();
    let table = db.table_mut(tid)?;
    let dump = table.heap.dump().map_err(DbError::Storage)?;
    let schema = table.schema;
    let Some(h) = table.hash_indices.iter_mut().find(|h| h.def.attr == attr) else {
        return Ok(());
    };
    pool.free_owned(StructureId::hash_of(tid, attr));
    let mut fresh = HashIndex::with_capacity(
        pool.clone(),
        dump.len().max(64),
        StructureId::hash_of(tid, attr),
    )
    .map_err(DbError::Storage)?;
    for (rid, bytes) in &dump {
        fresh
            .insert(schema.attr_of(bytes, attr), *rid)
            .map_err(DbError::Storage)?;
    }
    h.index = fresh;
    report.rebuilt_hashes.push(attr);
    Ok(())
}

/// Heal every torn page and rebuild whatever structure owns it, whichever
/// table that is — the erasure campaign's recovery path for damage that
/// surfaces *outside* any single statement's roll-forward (a latent tear
/// read back during the whole-database scrub phase). Heap and scratch
/// pages are healed in place: heap deletes only clear slot-directory
/// entries and scrub writes never change live bytes, so the accepted torn
/// image plus a re-scrub is already correct.
pub(crate) fn heal_and_rebuild(
    db: &mut Database,
    home: TableId,
    corrupt: &[PageId],
) -> Result<MediaRecovery, WalError> {
    let mut report = MediaRecovery::default();
    let damage = classify_media_damage(db, home, corrupt, &mut report)?;
    rebuild_damaged(db, home, &damage, &mut report)?;
    Ok(report)
}

fn apply_side(
    db: &mut Database,
    tid: TableId,
    pending: &[(usize, Vec<SideOp>)],
) -> Result<(), WalError> {
    let table = db.table_mut(tid)?;
    for (attr, ops) in pending {
        if let Some(index) = table.index_on_mut(*attr) {
            apply_ops(&mut index.tree, ops).map_err(DbError::Storage)?;
        }
    }
    Ok(())
}
