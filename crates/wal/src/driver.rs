//! The recoverable bulk-delete driver: checkpoints, crash injection, and
//! roll-forward recovery (§3.2).
//!
//! Protocol:
//!
//! 1. **Materialize** — before any destructive work, the victim rows are
//!    resolved read-only (probe-index lookups + heap reads) and written to
//!    the log ("the results of the join variants ... should be materialized
//!    to stable storage"). Every later pass is derived from this durable
//!    list, which makes each pass idempotent.
//! 2. **Structure passes** — probe index, base table, then the remaining
//!    indices (unique first). After each pass all dirty pages are flushed
//!    and a checkpoint record is logged ("checkpoints are especially
//!    advisable when the processing of one structure is finished").
//! 3. **Recovery** — after a crash, the analysis pass finds the incomplete
//!    bulk delete, restores tree metadata from the last checkpoint, and
//!    **finishes the bulk deletion instead of rolling it back**, exactly as
//!    §3.2 prescribes. Pending side-files are applied only after the bulk
//!    delete completes.

use std::sync::Arc;
use std::sync::Mutex;

use bd_btree::{bulk_delete_sorted, BTree, Key, ReorgPolicy};
use bd_core::{Database, DbError, PhaseExecutor, PhaseTask, TableId};
use bd_storage::{BufferPool, Rid, StorageError};
use bd_txn::sidefile::{apply_ops, SideOp};

use crate::log::LogManager;
use crate::record::{LogRecord, MaterializedRow, StructureId, TreeMeta};

/// Where the crash injector fires during [`run_bulk_delete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After the victim rows were materialized and checkpointed.
    AfterMaterialize,
    /// After structure pass `i` ran but *before* its completion was logged
    /// or its pages flushed (the hard case: partial, unlogged work).
    MidStructure(usize),
    /// After structure pass `i` was logged and checkpointed.
    AfterStructure(usize),
    /// After the `n`-th mid-structure progress record of pass `i` was
    /// logged (exercises resume-from-progress).
    AtProgress(usize, usize),
    /// Inside a disk access: the [`bd_storage::FaultPlan`]'s crash point
    /// fired ([`StorageError::SimulatedCrash`]). Unlike the sites above,
    /// this one can land anywhere — mid-chunk, mid-flush, inside a
    /// concurrent fan-out arm — which is exactly what the
    /// crash-at-every-I/O campaign sweeps over.
    InIo,
}

/// One-shot crash injector.
#[derive(Debug, Default, Clone, Copy)]
pub struct CrashInjector {
    /// Where to crash, if anywhere.
    pub site: Option<CrashSite>,
}

impl CrashInjector {
    /// Crash at `site`.
    pub fn at(site: CrashSite) -> Self {
        CrashInjector { site: Some(site) }
    }

    /// No crash.
    pub fn none() -> Self {
        CrashInjector::default()
    }

    fn hit(&self, here: CrashSite) -> bool {
        self.site == Some(here)
    }
}

/// Driver errors.
#[derive(Debug)]
pub enum WalError {
    /// Engine error.
    Db(DbError),
    /// A crash fired (injector site or the disk's crash point); the
    /// database must be recovered.
    Crashed(CrashSite),
    /// The crash-at-every-I/O campaign found a crash point whose recovered
    /// state diverged from the fault-free reference run.
    Divergence {
        /// 1-based disk access the crash was injected at.
        crash_point: u64,
        /// The equivalence audit's findings.
        details: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Db(e) => write!(f, "{e}"),
            WalError::Crashed(site) => write!(f, "simulated crash at {site:?}"),
            WalError::Divergence {
                crash_point,
                details,
            } => write!(
                f,
                "recovery diverged after a crash at disk access {crash_point}: {details}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<DbError> for WalError {
    fn from(e: DbError) -> Self {
        // A disk-level crash point is a crash, not an engine error: the
        // caller must run recovery, exactly as for an injector site.
        match e {
            DbError::Storage(StorageError::SimulatedCrash) => WalError::Crashed(CrashSite::InIo),
            e => WalError::Db(e),
        }
    }
}

impl From<StorageError> for WalError {
    fn from(e: StorageError) -> Self {
        WalError::from(DbError::Storage(e))
    }
}

/// The structure order: probe index, table, then remaining indices with
/// unique ones first (§3.1.3). Deterministic so recovery re-derives it.
fn phases(db: &Database, tid: TableId, probe_attr: usize) -> Result<Vec<StructureId>, WalError> {
    let table = db.table(tid)?;
    if table.index_on(probe_attr).is_none() {
        return Err(DbError::NoProbeIndex { attr: probe_attr }.into());
    }
    let mut rest: Vec<&bd_core::Index> = table
        .indices
        .iter()
        .filter(|i| i.def.attr != probe_attr)
        .collect();
    rest.sort_by_key(|i| (!i.def.unique, i.def.attr));
    let mut out = vec![StructureId::Probe, StructureId::Table];
    out.extend(rest.iter().map(|i| StructureId::Index(i.def.attr as u16)));
    Ok(out)
}

/// Read-only victim resolution: probe-index lookups, then heap reads in
/// RID order.
fn materialize(
    db: &Database,
    tid: TableId,
    probe_attr: usize,
    keys: &[Key],
) -> Result<Vec<MaterializedRow>, WalError> {
    let table = db.table(tid)?;
    let tree = &table
        .index_on(probe_attr)
        .ok_or(DbError::NoProbeIndex { attr: probe_attr })?
        .tree;
    // One sorted merge over the leaf chain instead of a random probe per
    // key (the read-only analogue of the key-predicate bulk delete).
    let mut rids: Vec<Rid> = bd_btree::lookup_keys_sorted(tree, &{
        let mut k = keys.to_vec();
        k.sort_unstable();
        k
    })
    .map_err(DbError::Storage)?
    .into_iter()
    .map(|(_, rid)| rid)
    .collect();
    rids.sort_unstable();
    let schema = table.schema;
    let rows = rids
        .into_iter()
        .map(|rid| {
            let bytes = table.heap.get(rid).map_err(DbError::Storage)?;
            Ok(MaterializedRow {
                rid,
                attrs: schema.decode(&bytes).attrs,
            })
        })
        .collect::<Result<Vec<_>, WalError>>()?;
    Ok(rows)
}

/// Flush everything and log a checkpoint with current tree metadata.
fn checkpoint(db: &mut Database, tid: TableId, log: &LogManager) -> Result<(), WalError> {
    db.pool().flush_all().map_err(DbError::Storage)?;
    let table = db.table(tid)?;
    let trees = table
        .indices
        .iter()
        .map(|i| TreeMeta {
            attr: i.def.attr as u16,
            root: i.tree.root_page(),
            height: i.tree.height() as u16,
        })
        .collect();
    log.append(&LogRecord::Checkpoint { trees });
    Ok(())
}

/// Victims processed between two mid-structure progress records.
const PROGRESS_CHUNK: usize = 2048;

/// Run one structure pass, chunked: after every [`PROGRESS_CHUNK`] victims
/// the dirty pages are flushed and a [`LogRecord::Progress`] is written, so
/// a crash loses at most one chunk of work ("the last processed RID or
/// key-value ... stored in the log ... will speed up recovery"). `start`
/// skips victims a pre-crash run already durably processed. Lenient against
/// already-deleted entries so the first (possibly half-flushed) chunk can
/// be re-run.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    phase: StructureId,
    rows: &[MaterializedRow],
    start: usize,
    log: &LogManager,
    phase_idx: usize,
    crash: CrashInjector,
) -> Result<(), WalError> {
    // Per-structure victim lists, sorted in that structure's order.
    let sorted_pairs = |attr: usize| -> Vec<(Key, Rid)> {
        let mut pairs: Vec<(Key, Rid)> = rows.iter().map(|r| (r.attrs[attr], r.rid)).collect();
        pairs.sort_unstable();
        pairs
    };
    let total = rows.len();
    let mut done = start;
    let mut progress_records = 0usize;
    while done < total || (total == 0 && done == 0) {
        let end = (done + PROGRESS_CHUNK).min(total);
        {
            let table = db.table_mut(tid)?;
            match phase {
                StructureId::Probe => {
                    let pairs = sorted_pairs(probe_attr);
                    let tree = &mut table
                        .index_on_mut(probe_attr)
                        .expect("probe index present")
                        .tree;
                    bulk_delete_sorted(tree, &pairs[done..end], ReorgPolicy::FreeAtEmpty)
                        .map_err(DbError::Storage)?;
                }
                StructureId::Table => {
                    let rids: Vec<Rid> = rows[done..end].iter().map(|r| r.rid).collect();
                    table
                        .heap
                        .bulk_delete_sorted_lenient(&rids)
                        .map_err(DbError::Storage)?;
                    // Hash indices ride along with the table phase, updated
                    // the traditional way; deleting an already-absent entry
                    // is a no-op, so re-running a chunk is safe.
                    for hi in 0..table.hash_indices.len() {
                        let attr = table.hash_indices[hi].def.attr;
                        for row in &rows[done..end] {
                            let key = row.attrs[attr];
                            table.hash_indices[hi]
                                .index
                                .delete(key, row.rid)
                                .map_err(DbError::Storage)?;
                        }
                    }
                }
                StructureId::Index(attr) => {
                    let pairs = sorted_pairs(attr as usize);
                    let tree = &mut table
                        .index_on_mut(attr as usize)
                        .expect("index present")
                        .tree;
                    bulk_delete_sorted(tree, &pairs[done..end], ReorgPolicy::FreeAtEmpty)
                        .map_err(DbError::Storage)?;
                }
            }
        }
        done = end;
        if done < total {
            // Mid-structure checkpoint: flush, then make progress durable.
            db.pool().flush_all().map_err(DbError::Storage)?;
            log.append(&LogRecord::Progress {
                structure: phase,
                done: done as u32,
            });
            progress_records += 1;
            if crash.hit(CrashSite::AtProgress(phase_idx, progress_records)) {
                return Err(WalError::Crashed(CrashSite::AtProgress(
                    phase_idx,
                    progress_records,
                )));
            }
        }
        if total == 0 {
            break;
        }
    }
    Ok(())
}

/// Run a recoverable bulk delete, logging every step. On a simulated crash
/// the error carries the site; the caller then simulates volatile-memory
/// loss (`db.pool().crash()`) and calls [`recover`].
pub fn run_bulk_delete(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    log: &LogManager,
    crash: CrashInjector,
) -> Result<usize, WalError> {
    let mut keys = d_keys.to_vec();
    keys.sort_unstable();
    keys.dedup();
    log.append(&LogRecord::BulkBegin {
        probe_attr: probe_attr as u16,
        keys: keys.clone(),
    });

    let rows = materialize(db, tid, probe_attr, &keys)?;
    log.append(&LogRecord::RowsMaterialized { rows: rows.clone() });
    checkpoint(db, tid, log)?;
    if crash.hit(CrashSite::AfterMaterialize) {
        return Err(WalError::Crashed(CrashSite::AfterMaterialize));
    }

    for (i, phase) in phases(db, tid, probe_attr)?.into_iter().enumerate() {
        run_serial_phase(db, tid, probe_attr, phase, &rows, log, i, crash)?;
    }

    log.append(&LogRecord::BulkCommit);
    Ok(rows.len())
}

/// One serial structure pass end-to-end: the chunked pass, a flush that
/// makes the final chunk durable *before* completion is logged (a
/// disk-level crash between pass and flush must re-run the pass on
/// recovery, never skip it), the `StructureDone` record, and a checkpoint.
#[allow(clippy::too_many_arguments)]
fn run_serial_phase(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    phase: StructureId,
    rows: &[MaterializedRow],
    log: &LogManager,
    i: usize,
    crash: CrashInjector,
) -> Result<(), WalError> {
    run_phase(db, tid, probe_attr, phase, rows, 0, log, i, crash)?;
    if crash.hit(CrashSite::MidStructure(i)) {
        return Err(WalError::Crashed(CrashSite::MidStructure(i)));
    }
    db.pool().flush_all().map_err(DbError::Storage)?;
    log.append(&LogRecord::StructureDone { structure: phase });
    checkpoint(db, tid, log)?;
    if crash.hit(CrashSite::AfterStructure(i)) {
        return Err(WalError::Crashed(CrashSite::AfterStructure(i)));
    }
    Ok(())
}

/// One concurrent fan-out arm of [`run_bulk_delete_parallel`]: the chunked
/// `⋈̄` on a single non-unique index, with per-chunk flushes and durable
/// progress records, ending in the arm's own `StructureDone`. The flush
/// before `StructureDone` is what makes the arm's work durable — the group
/// checkpoint runs only after every arm has joined.
#[allow(clippy::too_many_arguments)]
fn run_index_phase_arm(
    pool: &Arc<BufferPool>,
    tree: &mut BTree,
    pairs: &[(Key, Rid)],
    phase: StructureId,
    phase_idx: usize,
    log: &LogManager,
    crash: CrashInjector,
    site: &Mutex<Option<CrashSite>>,
) -> Result<(), StorageError> {
    let trip = |here: CrashSite| -> Result<(), StorageError> {
        if crash.hit(here) {
            *site.lock().expect("crash site slot") = Some(here);
            return Err(StorageError::SimulatedCrash);
        }
        Ok(())
    };
    let total = pairs.len();
    let mut done = 0usize;
    let mut progress_records = 0usize;
    loop {
        let end = (done + PROGRESS_CHUNK).min(total);
        bulk_delete_sorted(tree, &pairs[done..end], ReorgPolicy::FreeAtEmpty)?;
        done = end;
        if done >= total {
            break;
        }
        // `flush_all` skips frames pinned by sibling arms; this arm holds
        // no pins here, so its chunk is fully durable before the progress
        // record claims it.
        pool.flush_all()?;
        log.append(&LogRecord::Progress {
            structure: phase,
            done: done as u32,
        });
        progress_records += 1;
        trip(CrashSite::AtProgress(phase_idx, progress_records))?;
    }
    trip(CrashSite::MidStructure(phase_idx))?;
    pool.flush_all()?;
    log.append(&LogRecord::StructureDone { structure: phase });
    Ok(())
}

/// [`run_bulk_delete`] with the non-unique index passes dispatched to up to
/// `workers` threads — the recoverable analogue of the strategy layer's
/// `vertical_parallel`. The serial prefix (materialize, probe, table,
/// unique indices — §3.1's ordering) is identical to the serial driver;
/// the fan-out arms log their own progress and completion records into the
/// shared log, and one group checkpoint follows the join. The executor
/// runs [`PhaseExecutor::without_degradation`]: this driver's fault story
/// is roll-forward recovery from the log, so a crashed arm must fail the
/// statement and leave recovery to [`recover`], not retry behind the
/// log's back.
pub fn run_bulk_delete_parallel(
    db: &mut Database,
    tid: TableId,
    probe_attr: usize,
    d_keys: &[Key],
    log: &LogManager,
    crash: CrashInjector,
    workers: usize,
) -> Result<usize, WalError> {
    if workers <= 1 {
        return run_bulk_delete(db, tid, probe_attr, d_keys, log, crash);
    }
    let mut keys = d_keys.to_vec();
    keys.sort_unstable();
    keys.dedup();
    log.append(&LogRecord::BulkBegin {
        probe_attr: probe_attr as u16,
        keys: keys.clone(),
    });

    let rows = materialize(db, tid, probe_attr, &keys)?;
    log.append(&LogRecord::RowsMaterialized { rows: rows.clone() });
    checkpoint(db, tid, log)?;
    if crash.hit(CrashSite::AfterMaterialize) {
        return Err(WalError::Crashed(CrashSite::AfterMaterialize));
    }

    // Serial prefix: probe, table, then unique indices — `phases` orders
    // unique indices directly after the table, so the prefix is contiguous.
    let all = phases(db, tid, probe_attr)?;
    let n_serial = {
        let table = db.table(tid)?;
        all.iter()
            .take_while(|p| match p {
                StructureId::Probe | StructureId::Table => true,
                StructureId::Index(attr) => table
                    .index_on(*attr as usize)
                    .map(|i| i.def.unique)
                    .unwrap_or(false),
            })
            .count()
    };
    for (i, phase) in all[..n_serial].iter().enumerate() {
        run_serial_phase(db, tid, probe_attr, *phase, &rows, log, i, crash)?;
    }

    // Fan-out: one arm per remaining (non-unique) index.
    let fan: Vec<(usize, u16)> = all[n_serial..]
        .iter()
        .enumerate()
        .map(|(j, p)| match p {
            StructureId::Index(attr) => (n_serial + j, *attr),
            _ => unreachable!("serial prefix covers probe and table"),
        })
        .collect();
    if !fan.is_empty() {
        let pair_lists: Vec<Vec<(Key, Rid)>> = fan
            .iter()
            .map(|&(_, attr)| {
                let mut pairs: Vec<(Key, Rid)> = rows
                    .iter()
                    .map(|r| (r.attrs[attr as usize], r.rid))
                    .collect();
                pairs.sort_unstable();
                pairs
            })
            .collect();
        let site_slot: Mutex<Option<CrashSite>> = Mutex::new(None);
        let pool = db.pool().clone();
        let fan_result = {
            let table = db.table_mut(tid)?;
            let rank_of = |attr: u16| fan.iter().position(|&(_, a)| a == attr);
            let mut trees: Vec<(usize, &mut BTree)> = table
                .indices
                .iter_mut()
                .filter_map(|ix| rank_of(ix.def.attr as u16).map(|r| (r, &mut ix.tree)))
                .collect();
            trees.sort_by_key(|&(r, _)| r);

            let mut exec = PhaseExecutor::new(workers).without_degradation();
            let mut tasks: Vec<PhaseTask> = Vec::new();
            for ((rank, tree), pairs) in trees.into_iter().zip(pair_lists.iter()) {
                let (phase_idx, attr) = fan[rank];
                let phase = StructureId::Index(attr);
                let pool = pool.clone();
                let site_slot = &site_slot;
                tasks.push(PhaseTask::new(format!("wal bd index {attr}"), move || {
                    run_index_phase_arm(&pool, tree, pairs, phase, phase_idx, log, crash, site_slot)
                }));
            }
            exec.fan_out(tasks)
        };
        if let Err(e) = fan_result {
            // An injector site inside an arm travels back as
            // `SimulatedCrash` plus the site slot; a disk crash point has
            // no slot and maps to `CrashSite::InIo` via `From`.
            if e == StorageError::SimulatedCrash {
                if let Some(site) = *site_slot.lock().expect("crash site slot") {
                    return Err(WalError::Crashed(site));
                }
            }
            return Err(e.into());
        }
        // One group checkpoint covers every arm's completed pass.
        checkpoint(db, tid, log)?;
        for &(phase_idx, _) in &fan {
            if crash.hit(CrashSite::AfterStructure(phase_idx)) {
                return Err(WalError::Crashed(CrashSite::AfterStructure(phase_idx)));
            }
        }
    }

    log.append(&LogRecord::BulkCommit);
    Ok(rows.len())
}

/// Recover after a crash: finish any incomplete bulk delete (roll forward),
/// then apply pending side-file operations (§3.2: "the side-files are
/// applied to the indices when the bulk deleter has finished"). Returns the
/// number of victim rows the completed bulk delete covered (0 if the log
/// held no incomplete bulk delete).
pub fn recover(
    db: &mut Database,
    tid: TableId,
    log: &LogManager,
    pending_side_ops: &[(usize, Vec<SideOp>)],
) -> Result<usize, WalError> {
    let records = log.records();
    // Analysis: locate the last BulkBegin and what followed it.
    let begin_idx = records
        .iter()
        .rposition(|r| matches!(r, LogRecord::BulkBegin { .. }));
    let Some(begin_idx) = begin_idx else {
        apply_side(db, tid, pending_side_ops)?;
        return Ok(0);
    };
    let (probe_attr, keys) = match &records[begin_idx] {
        LogRecord::BulkBegin { probe_attr, keys } => (*probe_attr as usize, keys.clone()),
        _ => unreachable!(),
    };
    let tail = &records[begin_idx + 1..];
    if tail.iter().any(|r| matches!(r, LogRecord::BulkCommit)) {
        apply_side(db, tid, pending_side_ops)?;
        return Ok(0);
    }

    let mut rows: Option<Vec<MaterializedRow>> = None;
    let mut done: Vec<StructureId> = Vec::new();
    let mut last_ckpt: Option<Vec<TreeMeta>> = None;
    let mut progress: std::collections::HashMap<StructureId, usize> =
        std::collections::HashMap::new();
    for r in tail {
        match r {
            LogRecord::RowsMaterialized { rows: r } => rows = Some(r.clone()),
            LogRecord::StructureDone { structure } => done.push(*structure),
            LogRecord::Checkpoint { trees } => last_ckpt = Some(trees.clone()),
            LogRecord::Progress { structure, done } => {
                let e = progress.entry(*structure).or_insert(0);
                *e = (*e).max(*done as usize);
            }
            _ => {}
        }
    }

    // Restore durable handles: tree metadata from the last checkpoint,
    // counters recounted from the disk state.
    {
        let pool = db.pool().clone();
        let table = db.table_mut(tid)?;
        if let Some(metas) = &last_ckpt {
            for meta in metas {
                if let Some(index) = table.index_on_mut(meta.attr as usize) {
                    index.tree = BTree::restore(
                        pool.clone(),
                        index.def.config,
                        meta.root,
                        meta.height as usize,
                    )
                    .map_err(DbError::Storage)?;
                }
            }
        } else {
            for index in &mut table.indices {
                index.tree.recount().map_err(DbError::Storage)?;
            }
        }
        table.heap.recount().map_err(DbError::Storage)?;
        for h in &mut table.hash_indices {
            h.index.recount().map_err(DbError::Storage)?;
        }
    }

    // Redo: finish the bulk delete from the materialized rows.
    let rows = match rows {
        Some(r) => r,
        None => {
            // Crash hit before materialization was logged: no destructive
            // work has happened; materialize now.
            let r = materialize(db, tid, probe_attr, &keys)?;
            log.append(&LogRecord::RowsMaterialized { rows: r.clone() });
            checkpoint(db, tid, log)?;
            r
        }
    };
    for (i, phase) in phases(db, tid, probe_attr)?.into_iter().enumerate() {
        if done.contains(&phase) {
            continue;
        }
        // Resume from the last durable progress record for this structure;
        // back off one chunk so the possibly half-flushed chunk re-runs
        // (the passes are lenient, so this is safe).
        let start = progress.get(&phase).copied().unwrap_or(0).saturating_sub(0);
        run_phase(
            db,
            tid,
            probe_attr,
            phase,
            &rows,
            start,
            log,
            i,
            CrashInjector::none(),
        )?;
        db.pool().flush_all().map_err(DbError::Storage)?;
        log.append(&LogRecord::StructureDone { structure: phase });
        checkpoint(db, tid, log)?;
    }
    log.append(&LogRecord::BulkCommit);

    apply_side(db, tid, pending_side_ops)?;
    db.pool().flush_all().map_err(DbError::Storage)?;
    Ok(rows.len())
}

fn apply_side(
    db: &mut Database,
    tid: TableId,
    pending: &[(usize, Vec<SideOp>)],
) -> Result<(), WalError> {
    let table = db.table_mut(tid)?;
    for (attr, ops) in pending {
        if let Some(index) = table.index_on_mut(*attr) {
            apply_ops(&mut index.tree, ops).map_err(DbError::Storage)?;
        }
    }
    Ok(())
}
