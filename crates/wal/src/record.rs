//! Log records and their wire encoding.
//!
//! The records implement §3.2's recipe: the delete list and the "results of
//! the join variants" are "materialized to stable storage"; checkpoints
//! record structure metadata and progress "especially ... when the
//! processing of one structure (R, I_A, I_B, or I_C) is finished".

use crate::driver::WalError;
use bd_btree::Key;
use bd_storage::{PageCatalog, Rid};

// `StructureId` used to be defined here; it now lives at the bottom of the
// dependency graph (allocation tags pages with it) and is re-exported so
// existing `bd_wal::record::StructureId` paths keep working.
pub use bd_storage::StructureId;

/// Log sequence number (record index in this prototype).
pub type Lsn = u64;

/// One materialized victim row: its RID and all attribute values (enough
/// to re-derive every downstream index's delete pairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedRow {
    /// Record id.
    pub rid: Rid,
    /// All attribute values of the row.
    pub attrs: Vec<Key>,
}

/// Durable metadata of one tree at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeMeta {
    /// Indexed attribute.
    pub attr: u16,
    /// Root page.
    pub root: u32,
    /// Tree height.
    pub height: u16,
}

/// WAL record kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A bulk delete started: the sorted delete list `D`.
    BulkBegin {
        /// Attribute the delete predicate names.
        probe_attr: u16,
        /// Sorted delete keys.
        keys: Vec<Key>,
    },
    /// The victim rows, materialized before any destructive work.
    RowsMaterialized {
        /// Victim rows in RID order.
        rows: Vec<MaterializedRow>,
    },
    /// Fuzzy checkpoint: all dirty pages were flushed; tree metadata as of
    /// this point.
    Checkpoint {
        /// Per-index durable metadata.
        trees: Vec<TreeMeta>,
    },
    /// Mid-structure progress: every victim up to and including position
    /// `done` (in the materialized row order for that structure) has been
    /// processed and flushed. "The last processed RID or key-value ...
    /// stored in the log ... will speed up recovery."
    Progress {
        /// Which structure.
        structure: StructureId,
        /// Victims processed so far.
        done: u32,
    },
    /// One structure's bulk delete pass completed.
    StructureDone {
        /// Which structure.
        structure: StructureId,
    },
    /// The bulk delete committed.
    BulkCommit,
    /// Snapshot of the page → owner catalog, appended alongside each
    /// checkpoint. Media recovery classifies torn pages against it when the
    /// disk's live catalog is unavailable.
    CatalogSnapshot {
        /// The full page → owner map.
        catalog: PageCatalog,
    },
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Bounds-checked slice of the next `n` bytes; a truncated buffer is a
    /// decode error, never a panic.
    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let avail = self.buf.len() - self.pos;
        if avail < n {
            return Err(WalError::CorruptLog(format!(
                "record truncated at byte {}: need {n} more, {avail} available",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Check that at least `n` more bytes exist without consuming them
    /// (guards length-prefixed loops against absurd counts from corrupt
    /// prefixes before anything is allocated).
    fn need(&self, n: usize) -> Result<(), WalError> {
        let avail = self.buf.len() - self.pos;
        if avail < n {
            return Err(WalError::CorruptLog(format!(
                "record truncated at byte {}: need {n} more, {avail} available",
                self.pos
            )));
        }
        Ok(())
    }
    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WalError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl LogRecord {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            LogRecord::BulkBegin { probe_attr, keys } => {
                out.push(1);
                put_u16(&mut out, *probe_attr);
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_u64(&mut out, *k);
                }
            }
            LogRecord::RowsMaterialized { rows } => {
                out.push(2);
                put_u32(&mut out, rows.len() as u32);
                if let Some(first) = rows.first() {
                    put_u16(&mut out, first.attrs.len() as u16);
                } else {
                    put_u16(&mut out, 0);
                }
                for row in rows {
                    put_u64(&mut out, row.rid.to_u64());
                    for a in &row.attrs {
                        put_u64(&mut out, *a);
                    }
                }
            }
            LogRecord::Checkpoint { trees } => {
                out.push(3);
                put_u32(&mut out, trees.len() as u32);
                for t in trees {
                    put_u16(&mut out, t.attr);
                    put_u32(&mut out, t.root);
                    put_u16(&mut out, t.height);
                }
            }
            LogRecord::StructureDone { structure } => {
                out.push(4);
                encode_structure(&mut out, *structure);
            }
            LogRecord::BulkCommit => out.push(5),
            LogRecord::Progress { structure, done } => {
                out.push(6);
                put_u32(&mut out, *done);
                encode_structure(&mut out, *structure);
            }
            LogRecord::CatalogSnapshot { catalog } => {
                out.push(7);
                catalog.encode(&mut out);
            }
        }
        out
    }

    /// Deserialize from bytes produced by [`LogRecord::encode`].
    ///
    /// Corrupt input — an unknown tag, or a buffer truncated anywhere —
    /// is reported as [`WalError::CorruptLog`], never a panic: recovery
    /// reads the log after a crash and must fail cleanly on damage.
    pub fn decode(buf: &[u8]) -> Result<LogRecord, WalError> {
        let mut r = Reader { buf, pos: 0 };
        Ok(match r.u8()? {
            1 => {
                let probe_attr = r.u16()?;
                let n = r.u32()? as usize;
                r.need(n * 8)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(r.u64()?);
                }
                LogRecord::BulkBegin { probe_attr, keys }
            }
            2 => {
                let n = r.u32()? as usize;
                let n_attrs = r.u16()? as usize;
                r.need(n * (1 + n_attrs) * 8)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let rid = Rid::from_u64(r.u64()?);
                    let mut attrs = Vec::with_capacity(n_attrs);
                    for _ in 0..n_attrs {
                        attrs.push(r.u64()?);
                    }
                    rows.push(MaterializedRow { rid, attrs });
                }
                LogRecord::RowsMaterialized { rows }
            }
            3 => {
                let n = r.u32()? as usize;
                r.need(n * 8)?;
                let mut trees = Vec::with_capacity(n);
                for _ in 0..n {
                    trees.push(TreeMeta {
                        attr: r.u16()?,
                        root: r.u32()?,
                        height: r.u16()?,
                    });
                }
                LogRecord::Checkpoint { trees }
            }
            4 => LogRecord::StructureDone {
                structure: decode_structure(&mut r)?,
            },
            5 => LogRecord::BulkCommit,
            6 => {
                let done = r.u32()?;
                LogRecord::Progress {
                    structure: decode_structure(&mut r)?,
                    done,
                }
            }
            7 => {
                let mut pos = r.pos;
                let catalog = PageCatalog::decode(r.buf, &mut pos).ok_or_else(|| {
                    WalError::CorruptLog(
                        "catalog snapshot truncated or has unknown owner tag".into(),
                    )
                })?;
                LogRecord::CatalogSnapshot { catalog }
            }
            t => return Err(WalError::CorruptLog(format!("unknown record tag {t}"))),
        })
    }
}

fn encode_structure(out: &mut Vec<u8>, s: StructureId) {
    match s {
        StructureId::Probe => out.push(0),
        StructureId::Table => out.push(1),
        StructureId::Index(a) => {
            out.push(2);
            put_u16(out, a);
        }
        StructureId::Hash(a) => {
            out.push(3);
            put_u16(out, a);
        }
        StructureId::Temp => out.push(4),
        StructureId::Spatial(a) => {
            out.push(5);
            put_u16(out, a);
        }
    }
}

fn decode_structure(r: &mut Reader<'_>) -> Result<StructureId, WalError> {
    Ok(match r.u8()? {
        0 => StructureId::Probe,
        1 => StructureId::Table,
        2 => StructureId::Index(r.u16()?),
        3 => StructureId::Hash(r.u16()?),
        4 => StructureId::Temp,
        5 => StructureId::Spatial(r.u16()?),
        t => return Err(WalError::CorruptLog(format!("unknown structure tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: LogRecord) {
        assert_eq!(LogRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn all_records_roundtrip() {
        roundtrip(LogRecord::BulkBegin {
            probe_attr: 0,
            keys: vec![1, u64::MAX, 42],
        });
        roundtrip(LogRecord::RowsMaterialized {
            rows: vec![
                MaterializedRow {
                    rid: Rid::new(3, 4),
                    attrs: vec![10, 20, 30],
                },
                MaterializedRow {
                    rid: Rid::new(9, 1),
                    attrs: vec![7, 8, 9],
                },
            ],
        });
        roundtrip(LogRecord::RowsMaterialized { rows: vec![] });
        roundtrip(LogRecord::Checkpoint {
            trees: vec![
                TreeMeta {
                    attr: 0,
                    root: 17,
                    height: 3,
                },
                TreeMeta {
                    attr: 2,
                    root: 400,
                    height: 4,
                },
            ],
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Probe,
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Table,
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Index(5),
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Hash(3),
        });
        roundtrip(LogRecord::Progress {
            structure: StructureId::Hash(1),
            done: 2048,
        });
        roundtrip(LogRecord::BulkCommit);
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Temp,
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Spatial(2),
        });
        let mut catalog = PageCatalog::new();
        catalog.note_alloc(0, 4, StructureId::Table);
        catalog.note_alloc(4, 2, StructureId::Index(1));
        catalog.free(2);
        roundtrip(LogRecord::CatalogSnapshot { catalog });
        roundtrip(LogRecord::CatalogSnapshot {
            catalog: PageCatalog::new(),
        });
        roundtrip(LogRecord::Progress {
            structure: StructureId::Index(3),
            done: 123_456,
        });
        roundtrip(LogRecord::Progress {
            structure: StructureId::Table,
            done: 0,
        });
    }

    #[test]
    fn empty_key_list() {
        roundtrip(LogRecord::BulkBegin {
            probe_attr: 3,
            keys: vec![],
        });
    }

    fn is_corrupt(buf: &[u8]) -> bool {
        matches!(LogRecord::decode(buf), Err(WalError::CorruptLog(_)))
    }

    #[test]
    fn unknown_record_tag_is_a_decode_error() {
        assert!(is_corrupt(&[9, 0, 0, 0]));
        assert!(is_corrupt(&[0]), "tag 0 was never assigned");
        assert!(is_corrupt(&[]), "an empty buffer has no tag");
    }

    #[test]
    fn unknown_structure_tag_is_a_decode_error() {
        assert!(is_corrupt(&[4, 7]), "StructureDone with structure tag 7");
    }

    #[test]
    fn truncation_anywhere_is_a_decode_error_not_a_panic() {
        let victims = [
            LogRecord::BulkBegin {
                probe_attr: 1,
                keys: vec![10, 20, 30],
            },
            LogRecord::RowsMaterialized {
                rows: vec![MaterializedRow {
                    rid: Rid::new(3, 4),
                    attrs: vec![10, 20, 30],
                }],
            },
            LogRecord::Checkpoint {
                trees: vec![TreeMeta {
                    attr: 0,
                    root: 17,
                    height: 3,
                }],
            },
            LogRecord::Progress {
                structure: StructureId::Hash(2),
                done: 7,
            },
            LogRecord::StructureDone {
                structure: StructureId::Index(5),
            },
            {
                let mut catalog = PageCatalog::new();
                catalog.note_alloc(0, 3, StructureId::Hash(1));
                LogRecord::CatalogSnapshot { catalog }
            },
        ];
        for rec in victims {
            let bytes = rec.encode();
            for len in 0..bytes.len() {
                assert!(
                    is_corrupt(&bytes[..len]),
                    "{rec:?} truncated to {len}/{} bytes must fail cleanly",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn wire_format_is_stable_across_versions() {
        // Byte-level pins of the pre-Hash encodings: tags 0..=2 keep their
        // meaning, Hash extends the structure tag space at 3. A log written
        // before this version decodes identically today.
        assert_eq!(
            LogRecord::decode(&[4, 1]).unwrap(),
            LogRecord::StructureDone {
                structure: StructureId::Table
            }
        );
        assert_eq!(
            LogRecord::decode(&[4, 2, 5, 0]).unwrap(),
            LogRecord::StructureDone {
                structure: StructureId::Index(5)
            }
        );
        assert_eq!(
            LogRecord::decode(&[6, 7, 0, 0, 0, 0]).unwrap(),
            LogRecord::Progress {
                structure: StructureId::Probe,
                done: 7
            }
        );
        assert_eq!(LogRecord::decode(&[5]).unwrap(), LogRecord::BulkCommit);
        // And the new variant's wire form, pinned so future versions stay
        // compatible with logs written today.
        assert_eq!(
            LogRecord::StructureDone {
                structure: StructureId::Hash(3)
            }
            .encode(),
            vec![4, 3, 3, 0]
        );
    }
}
