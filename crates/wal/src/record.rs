//! Log records and their wire encoding.
//!
//! The records implement §3.2's recipe: the delete list and the "results of
//! the join variants" are "materialized to stable storage"; checkpoints
//! record structure metadata and progress "especially ... when the
//! processing of one structure (R, I_A, I_B, or I_C) is finished".

use crate::driver::WalError;
use bd_btree::Key;
use bd_storage::{PageCatalog, Rid};

// `StructureId` used to be defined here; it now lives at the bottom of the
// dependency graph (allocation tags pages with it) and is re-exported so
// existing `bd_wal::record::StructureId` paths keep working.
pub use bd_storage::StructureId;

/// Log sequence number (record index in this prototype).
pub type Lsn = u64;

/// One materialized victim row: its RID and all attribute values (enough
/// to re-derive every downstream index's delete pairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedRow {
    /// Record id.
    pub rid: Rid,
    /// All attribute values of the row.
    pub attrs: Vec<Key>,
}

/// One table's share of an erasure campaign, as persisted in the
/// campaign manifest: delete `keys` from `table` probing on `attr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignStep {
    /// Target table (the `TableId` as a plain index).
    pub table: u32,
    /// Probe attribute within that table.
    pub attr: u16,
    /// Sorted delete keys for this step.
    pub keys: Vec<Key>,
}

/// Durable metadata of one tree at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeMeta {
    /// Indexed attribute.
    pub attr: u16,
    /// Root page.
    pub root: u32,
    /// Tree height.
    pub height: u16,
}

/// WAL record kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A bulk delete started: the sorted delete list `D`.
    BulkBegin {
        /// Attribute the delete predicate names.
        probe_attr: u16,
        /// Sorted delete keys.
        keys: Vec<Key>,
    },
    /// The victim rows, materialized before any destructive work.
    RowsMaterialized {
        /// Victim rows in RID order.
        rows: Vec<MaterializedRow>,
    },
    /// Fuzzy checkpoint: all dirty pages were flushed; tree metadata as of
    /// this point.
    Checkpoint {
        /// Per-index durable metadata.
        trees: Vec<TreeMeta>,
    },
    /// Mid-structure progress: every victim up to and including position
    /// `done` (in the materialized row order for that structure) has been
    /// processed and flushed. "The last processed RID or key-value ...
    /// stored in the log ... will speed up recovery."
    Progress {
        /// Which structure.
        structure: StructureId,
        /// Victims processed so far.
        done: u32,
    },
    /// One structure's bulk delete pass completed.
    StructureDone {
        /// Which structure.
        structure: StructureId,
    },
    /// The bulk delete committed.
    BulkCommit,
    /// Snapshot of the page → owner catalog, appended alongside each
    /// checkpoint. Media recovery classifies torn pages against it when the
    /// disk's live catalog is unavailable.
    CatalogSnapshot {
        /// The full page → owner map.
        catalog: PageCatalog,
    },
    /// An erasure campaign started: the full cascade manifest, planned
    /// up front so recovery can resume the campaign without re-planning
    /// against a half-deleted referential graph.
    CampaignBegin {
        /// Campaign identifier (unique within this log).
        id: u64,
        /// Every table's delete step, in execution order.
        steps: Vec<CampaignStep>,
    },
    /// Step `step` of campaign `id` finished (its bulk delete committed).
    CampaignStepDone {
        /// Campaign identifier.
        id: u64,
        /// Zero-based index into the manifest's step list.
        step: u32,
    },
    /// Campaign `id` committed: every step ran, the database was scrubbed,
    /// and key-bearing log records were redacted.
    CampaignCommit {
        /// Campaign identifier.
        id: u64,
    },
    /// A record whose payload was scrubbed at campaign commit. Only the
    /// original tag survives; the rest of the slot is zero padding so the
    /// log's byte layout (offsets, lengths) is untouched by redaction.
    Redacted {
        /// Tag of the record this slot used to hold.
        original_tag: u8,
    },
    /// Campaign `id` was cancelled after `completed` steps. The completed
    /// prefix is committed and consistent; the remaining steps never ran.
    CampaignCancelled {
        /// Campaign identifier.
        id: u64,
        /// Number of manifest steps that finished before the cancel.
        completed: u32,
    },
    /// The maintenance daemon started restructuring `structure` (incremental
    /// leaf packing / page recycling). Maintenance rewrites pages without
    /// logging their images, so an unclosed bracket at recovery means the
    /// structure may hold a half-applied rewrite and must be rebuilt from
    /// the heap.
    MaintainBegin {
        /// Structure under maintenance.
        structure: StructureId,
    },
    /// The maintenance pass over `structure` finished and its pages were
    /// flushed; the bracket opened by the matching
    /// [`LogRecord::MaintainBegin`] is closed.
    MaintainEnd {
        /// Structure under maintenance.
        structure: StructureId,
    },
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Bounds-checked slice of the next `n` bytes; a truncated buffer is a
    /// decode error, never a panic.
    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        let avail = self.buf.len() - self.pos;
        if avail < n {
            return Err(WalError::CorruptLog(format!(
                "record truncated at byte {}: need {n} more, {avail} available",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Check that at least `n` more bytes exist without consuming them
    /// (guards length-prefixed loops against absurd counts from corrupt
    /// prefixes before anything is allocated).
    fn need(&self, n: usize) -> Result<(), WalError> {
        let avail = self.buf.len() - self.pos;
        if avail < n {
            return Err(WalError::CorruptLog(format!(
                "record truncated at byte {}: need {n} more, {avail} available",
                self.pos
            )));
        }
        Ok(())
    }
    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WalError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl LogRecord {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            LogRecord::BulkBegin { probe_attr, keys } => {
                out.push(1);
                put_u16(&mut out, *probe_attr);
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_u64(&mut out, *k);
                }
            }
            LogRecord::RowsMaterialized { rows } => {
                out.push(2);
                put_u32(&mut out, rows.len() as u32);
                if let Some(first) = rows.first() {
                    put_u16(&mut out, first.attrs.len() as u16);
                } else {
                    put_u16(&mut out, 0);
                }
                for row in rows {
                    put_u64(&mut out, row.rid.to_u64());
                    for a in &row.attrs {
                        put_u64(&mut out, *a);
                    }
                }
            }
            LogRecord::Checkpoint { trees } => {
                out.push(3);
                put_u32(&mut out, trees.len() as u32);
                for t in trees {
                    put_u16(&mut out, t.attr);
                    put_u32(&mut out, t.root);
                    put_u16(&mut out, t.height);
                }
            }
            LogRecord::StructureDone { structure } => {
                out.push(4);
                encode_structure(&mut out, *structure);
            }
            LogRecord::BulkCommit => out.push(5),
            LogRecord::Progress { structure, done } => {
                out.push(6);
                put_u32(&mut out, *done);
                encode_structure(&mut out, *structure);
            }
            LogRecord::CatalogSnapshot { catalog } => {
                out.push(7);
                catalog.encode(&mut out);
            }
            LogRecord::CampaignBegin { id, steps } => {
                out.push(8);
                put_u64(&mut out, *id);
                put_u32(&mut out, steps.len() as u32);
                for s in steps {
                    put_u32(&mut out, s.table);
                    put_u16(&mut out, s.attr);
                    put_u32(&mut out, s.keys.len() as u32);
                    for k in &s.keys {
                        put_u64(&mut out, *k);
                    }
                }
            }
            LogRecord::CampaignStepDone { id, step } => {
                out.push(9);
                put_u64(&mut out, *id);
                put_u32(&mut out, *step);
            }
            LogRecord::CampaignCommit { id } => {
                out.push(10);
                put_u64(&mut out, *id);
            }
            LogRecord::Redacted { original_tag } => {
                out.push(11);
                out.push(*original_tag);
            }
            LogRecord::CampaignCancelled { id, completed } => {
                out.push(12);
                put_u64(&mut out, *id);
                put_u32(&mut out, *completed);
            }
            LogRecord::MaintainBegin { structure } => {
                out.push(13);
                encode_structure(&mut out, *structure);
            }
            LogRecord::MaintainEnd { structure } => {
                out.push(14);
                encode_structure(&mut out, *structure);
            }
        }
        out
    }

    /// Deserialize from bytes produced by [`LogRecord::encode`].
    ///
    /// Corrupt input — an unknown tag, or a buffer truncated anywhere —
    /// is reported as [`WalError::CorruptLog`], never a panic: recovery
    /// reads the log after a crash and must fail cleanly on damage.
    pub fn decode(buf: &[u8]) -> Result<LogRecord, WalError> {
        let mut r = Reader { buf, pos: 0 };
        Ok(match r.u8()? {
            1 => {
                let probe_attr = r.u16()?;
                let n = r.u32()? as usize;
                r.need(n * 8)?;
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(r.u64()?);
                }
                LogRecord::BulkBegin { probe_attr, keys }
            }
            2 => {
                let n = r.u32()? as usize;
                let n_attrs = r.u16()? as usize;
                r.need(n * (1 + n_attrs) * 8)?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let rid = Rid::from_u64(r.u64()?);
                    let mut attrs = Vec::with_capacity(n_attrs);
                    for _ in 0..n_attrs {
                        attrs.push(r.u64()?);
                    }
                    rows.push(MaterializedRow { rid, attrs });
                }
                LogRecord::RowsMaterialized { rows }
            }
            3 => {
                let n = r.u32()? as usize;
                r.need(n * 8)?;
                let mut trees = Vec::with_capacity(n);
                for _ in 0..n {
                    trees.push(TreeMeta {
                        attr: r.u16()?,
                        root: r.u32()?,
                        height: r.u16()?,
                    });
                }
                LogRecord::Checkpoint { trees }
            }
            4 => LogRecord::StructureDone {
                structure: decode_structure(&mut r)?,
            },
            5 => LogRecord::BulkCommit,
            6 => {
                let done = r.u32()?;
                LogRecord::Progress {
                    structure: decode_structure(&mut r)?,
                    done,
                }
            }
            7 => {
                let mut pos = r.pos;
                let catalog = PageCatalog::decode(r.buf, &mut pos).ok_or_else(|| {
                    WalError::CorruptLog(
                        "catalog snapshot truncated or has unknown owner tag".into(),
                    )
                })?;
                LogRecord::CatalogSnapshot { catalog }
            }
            8 => {
                let id = r.u64()?;
                let n = r.u32()? as usize;
                // Each step costs at least 10 bytes (table + attr + count).
                r.need(n * 10)?;
                let mut steps = Vec::with_capacity(n);
                for _ in 0..n {
                    let table = r.u32()?;
                    let attr = r.u16()?;
                    let nk = r.u32()? as usize;
                    r.need(nk * 8)?;
                    let mut keys = Vec::with_capacity(nk);
                    for _ in 0..nk {
                        keys.push(r.u64()?);
                    }
                    steps.push(CampaignStep { table, attr, keys });
                }
                LogRecord::CampaignBegin { id, steps }
            }
            9 => LogRecord::CampaignStepDone {
                id: r.u64()?,
                step: r.u32()?,
            },
            10 => LogRecord::CampaignCommit { id: r.u64()? },
            11 => {
                // Redaction overwrites a record slot in place, so trailing
                // zero padding out to the original length is expected and
                // deliberately NOT an error.
                LogRecord::Redacted {
                    original_tag: r.u8()?,
                }
            }
            12 => LogRecord::CampaignCancelled {
                id: r.u64()?,
                completed: r.u32()?,
            },
            13 => LogRecord::MaintainBegin {
                structure: decode_structure(&mut r)?,
            },
            14 => LogRecord::MaintainEnd {
                structure: decode_structure(&mut r)?,
            },
            t => return Err(WalError::CorruptLog(format!("unknown record tag {t}"))),
        })
    }
}

fn encode_structure(out: &mut Vec<u8>, s: StructureId) {
    match s {
        StructureId::Probe => out.push(0),
        StructureId::Table => out.push(1),
        StructureId::Index(a) => {
            out.push(2);
            put_u16(out, a);
        }
        StructureId::Hash(a) => {
            out.push(3);
            put_u16(out, a);
        }
        StructureId::Temp => out.push(4),
        StructureId::Spatial(a) => {
            out.push(5);
            put_u16(out, a);
        }
        StructureId::Lsm(a) => {
            out.push(6);
            put_u16(out, a);
        }
    }
}

fn decode_structure(r: &mut Reader<'_>) -> Result<StructureId, WalError> {
    Ok(match r.u8()? {
        0 => StructureId::Probe,
        1 => StructureId::Table,
        2 => StructureId::Index(r.u16()?),
        3 => StructureId::Hash(r.u16()?),
        4 => StructureId::Temp,
        5 => StructureId::Spatial(r.u16()?),
        6 => StructureId::Lsm(r.u16()?),
        t => return Err(WalError::CorruptLog(format!("unknown structure tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: LogRecord) {
        assert_eq!(LogRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn all_records_roundtrip() {
        roundtrip(LogRecord::BulkBegin {
            probe_attr: 0,
            keys: vec![1, u64::MAX, 42],
        });
        roundtrip(LogRecord::RowsMaterialized {
            rows: vec![
                MaterializedRow {
                    rid: Rid::new(3, 4),
                    attrs: vec![10, 20, 30],
                },
                MaterializedRow {
                    rid: Rid::new(9, 1),
                    attrs: vec![7, 8, 9],
                },
            ],
        });
        roundtrip(LogRecord::RowsMaterialized { rows: vec![] });
        roundtrip(LogRecord::Checkpoint {
            trees: vec![
                TreeMeta {
                    attr: 0,
                    root: 17,
                    height: 3,
                },
                TreeMeta {
                    attr: 2,
                    root: 400,
                    height: 4,
                },
            ],
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Probe,
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Table,
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Index(5),
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Hash(3),
        });
        roundtrip(LogRecord::Progress {
            structure: StructureId::Hash(1),
            done: 2048,
        });
        roundtrip(LogRecord::BulkCommit);
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Temp,
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Spatial(2),
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Lsm(2),
        });
        roundtrip(LogRecord::MaintainBegin {
            structure: StructureId::lsm_of(1),
        });
        let mut catalog = PageCatalog::new();
        catalog.note_alloc(0, 4, StructureId::Table);
        catalog.note_alloc(4, 2, StructureId::Index(1));
        catalog.free(2);
        roundtrip(LogRecord::CatalogSnapshot { catalog });
        roundtrip(LogRecord::CatalogSnapshot {
            catalog: PageCatalog::new(),
        });
        roundtrip(LogRecord::Progress {
            structure: StructureId::Index(3),
            done: 123_456,
        });
        roundtrip(LogRecord::Progress {
            structure: StructureId::Table,
            done: 0,
        });
        roundtrip(LogRecord::CampaignBegin {
            id: 7,
            steps: vec![
                CampaignStep {
                    table: 0,
                    attr: 0,
                    keys: vec![1, 2, u64::MAX],
                },
                CampaignStep {
                    table: 3,
                    attr: 2,
                    keys: vec![],
                },
            ],
        });
        roundtrip(LogRecord::CampaignBegin {
            id: 0,
            steps: vec![],
        });
        roundtrip(LogRecord::CampaignStepDone { id: 7, step: 1 });
        roundtrip(LogRecord::CampaignCommit { id: 7 });
        roundtrip(LogRecord::Redacted { original_tag: 1 });
        roundtrip(LogRecord::CampaignCancelled {
            id: 7,
            completed: 2,
        });
        roundtrip(LogRecord::MaintainBegin {
            structure: StructureId::Index(4),
        });
        roundtrip(LogRecord::MaintainBegin {
            structure: StructureId::Table,
        });
        roundtrip(LogRecord::MaintainEnd {
            structure: StructureId::Index(4),
        });
        roundtrip(LogRecord::MaintainEnd {
            structure: StructureId::Hash(1),
        });
    }

    #[test]
    fn redacted_ignores_trailing_padding() {
        // Redaction keeps the slot length: [11, orig, 0, 0, ...] must
        // decode as Redacted regardless of how much padding follows.
        let mut bytes = LogRecord::Redacted { original_tag: 2 }.encode();
        bytes.extend_from_slice(&[0u8; 37]);
        assert_eq!(
            LogRecord::decode(&bytes).unwrap(),
            LogRecord::Redacted { original_tag: 2 }
        );
    }

    #[test]
    fn empty_key_list() {
        roundtrip(LogRecord::BulkBegin {
            probe_attr: 3,
            keys: vec![],
        });
    }

    fn is_corrupt(buf: &[u8]) -> bool {
        matches!(LogRecord::decode(buf), Err(WalError::CorruptLog(_)))
    }

    #[test]
    fn unknown_record_tag_is_a_decode_error() {
        assert!(is_corrupt(&[9, 0, 0, 0]));
        assert!(is_corrupt(&[0]), "tag 0 was never assigned");
        assert!(is_corrupt(&[]), "an empty buffer has no tag");
    }

    #[test]
    fn unknown_structure_tag_is_a_decode_error() {
        assert!(is_corrupt(&[4, 7]), "StructureDone with structure tag 7");
        // Lsm claimed tag 6; the next unassigned tag still fails, and a
        // truncated Lsm payload is corruption, not a panic.
        assert!(is_corrupt(&[4, 6]), "Lsm with its u16 payload cut off");
        assert!(is_corrupt(&[4, 6, 2]), "Lsm with half its u16 payload");
    }

    #[test]
    fn truncation_anywhere_is_a_decode_error_not_a_panic() {
        let victims = [
            LogRecord::BulkBegin {
                probe_attr: 1,
                keys: vec![10, 20, 30],
            },
            LogRecord::RowsMaterialized {
                rows: vec![MaterializedRow {
                    rid: Rid::new(3, 4),
                    attrs: vec![10, 20, 30],
                }],
            },
            LogRecord::Checkpoint {
                trees: vec![TreeMeta {
                    attr: 0,
                    root: 17,
                    height: 3,
                }],
            },
            LogRecord::Progress {
                structure: StructureId::Hash(2),
                done: 7,
            },
            LogRecord::StructureDone {
                structure: StructureId::Index(5),
            },
            {
                let mut catalog = PageCatalog::new();
                catalog.note_alloc(0, 3, StructureId::Hash(1));
                LogRecord::CatalogSnapshot { catalog }
            },
            LogRecord::CampaignBegin {
                id: 9,
                steps: vec![CampaignStep {
                    table: 1,
                    attr: 0,
                    keys: vec![5, 6],
                }],
            },
            LogRecord::CampaignStepDone { id: 9, step: 0 },
            LogRecord::CampaignCommit { id: 9 },
            LogRecord::Redacted { original_tag: 8 },
            LogRecord::CampaignCancelled {
                id: 9,
                completed: 1,
            },
            LogRecord::MaintainBegin {
                structure: StructureId::Index(2),
            },
            LogRecord::MaintainEnd {
                structure: StructureId::Index(2),
            },
            LogRecord::StructureDone {
                structure: StructureId::Lsm(3),
            },
        ];
        for rec in victims {
            let bytes = rec.encode();
            for len in 0..bytes.len() {
                assert!(
                    is_corrupt(&bytes[..len]),
                    "{rec:?} truncated to {len}/{} bytes must fail cleanly",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn wire_format_is_stable_across_versions() {
        // Byte-level pins of the pre-Hash encodings: tags 0..=2 keep their
        // meaning, Hash extends the structure tag space at 3. A log written
        // before this version decodes identically today.
        assert_eq!(
            LogRecord::decode(&[4, 1]).unwrap(),
            LogRecord::StructureDone {
                structure: StructureId::Table
            }
        );
        assert_eq!(
            LogRecord::decode(&[4, 2, 5, 0]).unwrap(),
            LogRecord::StructureDone {
                structure: StructureId::Index(5)
            }
        );
        assert_eq!(
            LogRecord::decode(&[6, 7, 0, 0, 0, 0]).unwrap(),
            LogRecord::Progress {
                structure: StructureId::Probe,
                done: 7
            }
        );
        assert_eq!(LogRecord::decode(&[5]).unwrap(), LogRecord::BulkCommit);
        // And the new variant's wire form, pinned so future versions stay
        // compatible with logs written today.
        assert_eq!(
            LogRecord::StructureDone {
                structure: StructureId::Hash(3)
            }
            .encode(),
            vec![4, 3, 3, 0]
        );
        // Lsm extends the structure tag space at 6, same shape as Hash:
        // one byte of tag, little-endian u16 payload.
        assert_eq!(
            LogRecord::StructureDone {
                structure: StructureId::Lsm(2)
            }
            .encode(),
            vec![4, 6, 2, 0]
        );
        assert_eq!(
            LogRecord::decode(&[4, 6, 2, 0]).unwrap(),
            LogRecord::StructureDone {
                structure: StructureId::Lsm(2)
            }
        );
        // Campaign manifest records, pinned byte-for-byte: a campaign log
        // written today must recover under every future version.
        assert_eq!(
            LogRecord::CampaignBegin {
                id: 1,
                steps: vec![CampaignStep {
                    table: 2,
                    attr: 3,
                    keys: vec![4],
                }],
            }
            .encode(),
            vec![
                8, // tag
                1, 0, 0, 0, 0, 0, 0, 0, // id
                1, 0, 0, 0, // n_steps
                2, 0, 0, 0, // table
                3, 0, // attr
                1, 0, 0, 0, // n_keys
                4, 0, 0, 0, 0, 0, 0, 0, // key
            ]
        );
        assert_eq!(
            LogRecord::CampaignStepDone { id: 1, step: 2 }.encode(),
            vec![9, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0]
        );
        assert_eq!(
            LogRecord::CampaignCommit { id: 1 }.encode(),
            vec![10, 1, 0, 0, 0, 0, 0, 0, 0]
        );
        assert_eq!(
            LogRecord::Redacted { original_tag: 2 }.encode(),
            vec![11, 2]
        );
        assert_eq!(
            LogRecord::CampaignCancelled {
                id: 1,
                completed: 2
            }
            .encode(),
            vec![12, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0]
        );
        // Maintenance brackets, pinned: tag byte, then the structure
        // encoding shared with StructureDone/Progress.
        assert_eq!(
            LogRecord::MaintainBegin {
                structure: StructureId::Index(5)
            }
            .encode(),
            vec![13, 2, 5, 0]
        );
        assert_eq!(
            LogRecord::MaintainEnd {
                structure: StructureId::Index(5)
            }
            .encode(),
            vec![14, 2, 5, 0]
        );
    }
}
