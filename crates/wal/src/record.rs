//! Log records and their wire encoding.
//!
//! The records implement §3.2's recipe: the delete list and the "results of
//! the join variants" are "materialized to stable storage"; checkpoints
//! record structure metadata and progress "especially ... when the
//! processing of one structure (R, I_A, I_B, or I_C) is finished".

use bd_btree::Key;
use bd_storage::Rid;

/// Log sequence number (record index in this prototype).
pub type Lsn = u64;

/// A structure processed by the bulk delete, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureId {
    /// The probe index (`I_A`).
    Probe,
    /// The base table (`R`).
    Table,
    /// A downstream index, by attribute number.
    Index(u16),
}

/// One materialized victim row: its RID and all attribute values (enough
/// to re-derive every downstream index's delete pairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaterializedRow {
    /// Record id.
    pub rid: Rid,
    /// All attribute values of the row.
    pub attrs: Vec<Key>,
}

/// Durable metadata of one tree at a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeMeta {
    /// Indexed attribute.
    pub attr: u16,
    /// Root page.
    pub root: u32,
    /// Tree height.
    pub height: u16,
}

/// WAL record kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A bulk delete started: the sorted delete list `D`.
    BulkBegin {
        /// Attribute the delete predicate names.
        probe_attr: u16,
        /// Sorted delete keys.
        keys: Vec<Key>,
    },
    /// The victim rows, materialized before any destructive work.
    RowsMaterialized {
        /// Victim rows in RID order.
        rows: Vec<MaterializedRow>,
    },
    /// Fuzzy checkpoint: all dirty pages were flushed; tree metadata as of
    /// this point.
    Checkpoint {
        /// Per-index durable metadata.
        trees: Vec<TreeMeta>,
    },
    /// Mid-structure progress: every victim up to and including position
    /// `done` (in the materialized row order for that structure) has been
    /// processed and flushed. "The last processed RID or key-value ...
    /// stored in the log ... will speed up recovery."
    Progress {
        /// Which structure.
        structure: StructureId,
        /// Victims processed so far.
        done: u32,
    },
    /// One structure's bulk delete pass completed.
    StructureDone {
        /// Which structure.
        structure: StructureId,
    },
    /// The bulk delete committed.
    BulkCommit,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u16(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.buf[self.pos..self.pos + 2].try_into().unwrap());
        self.pos += 2;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }
}

impl LogRecord {
    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            LogRecord::BulkBegin { probe_attr, keys } => {
                out.push(1);
                put_u16(&mut out, *probe_attr);
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_u64(&mut out, *k);
                }
            }
            LogRecord::RowsMaterialized { rows } => {
                out.push(2);
                put_u32(&mut out, rows.len() as u32);
                if let Some(first) = rows.first() {
                    put_u16(&mut out, first.attrs.len() as u16);
                } else {
                    put_u16(&mut out, 0);
                }
                for row in rows {
                    put_u64(&mut out, row.rid.to_u64());
                    for a in &row.attrs {
                        put_u64(&mut out, *a);
                    }
                }
            }
            LogRecord::Checkpoint { trees } => {
                out.push(3);
                put_u32(&mut out, trees.len() as u32);
                for t in trees {
                    put_u16(&mut out, t.attr);
                    put_u32(&mut out, t.root);
                    put_u16(&mut out, t.height);
                }
            }
            LogRecord::StructureDone { structure } => {
                out.push(4);
                encode_structure(&mut out, *structure);
            }
            LogRecord::BulkCommit => out.push(5),
            LogRecord::Progress { structure, done } => {
                out.push(6);
                put_u32(&mut out, *done);
                encode_structure(&mut out, *structure);
            }
        }
        out
    }

    /// Deserialize from bytes produced by [`LogRecord::encode`].
    pub fn decode(buf: &[u8]) -> LogRecord {
        let mut r = Reader { buf, pos: 1 };
        match buf[0] {
            1 => {
                let probe_attr = r.u16();
                let n = r.u32() as usize;
                let keys = (0..n).map(|_| r.u64()).collect();
                LogRecord::BulkBegin { probe_attr, keys }
            }
            2 => {
                let n = r.u32() as usize;
                let n_attrs = r.u16() as usize;
                let rows = (0..n)
                    .map(|_| MaterializedRow {
                        rid: Rid::from_u64(r.u64()),
                        attrs: (0..n_attrs).map(|_| r.u64()).collect(),
                    })
                    .collect();
                LogRecord::RowsMaterialized { rows }
            }
            3 => {
                let n = r.u32() as usize;
                let trees = (0..n)
                    .map(|_| TreeMeta {
                        attr: r.u16(),
                        root: r.u32(),
                        height: r.u16(),
                    })
                    .collect();
                LogRecord::Checkpoint { trees }
            }
            4 => LogRecord::StructureDone {
                structure: decode_structure(&mut r),
            },
            5 => LogRecord::BulkCommit,
            6 => {
                let done = r.u32();
                LogRecord::Progress {
                    structure: decode_structure(&mut r),
                    done,
                }
            }
            t => panic!("bad record tag {t}"),
        }
    }
}

fn encode_structure(out: &mut Vec<u8>, s: StructureId) {
    match s {
        StructureId::Probe => out.push(0),
        StructureId::Table => out.push(1),
        StructureId::Index(a) => {
            out.push(2);
            put_u16(out, a);
        }
    }
}

fn decode_structure(r: &mut Reader<'_>) -> StructureId {
    let tag = r.buf[r.pos];
    r.pos += 1;
    match tag {
        0 => StructureId::Probe,
        1 => StructureId::Table,
        2 => StructureId::Index(r.u16()),
        t => panic!("bad structure tag {t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: LogRecord) {
        assert_eq!(LogRecord::decode(&r.encode()), r);
    }

    #[test]
    fn all_records_roundtrip() {
        roundtrip(LogRecord::BulkBegin {
            probe_attr: 0,
            keys: vec![1, u64::MAX, 42],
        });
        roundtrip(LogRecord::RowsMaterialized {
            rows: vec![
                MaterializedRow {
                    rid: Rid::new(3, 4),
                    attrs: vec![10, 20, 30],
                },
                MaterializedRow {
                    rid: Rid::new(9, 1),
                    attrs: vec![7, 8, 9],
                },
            ],
        });
        roundtrip(LogRecord::RowsMaterialized { rows: vec![] });
        roundtrip(LogRecord::Checkpoint {
            trees: vec![
                TreeMeta {
                    attr: 0,
                    root: 17,
                    height: 3,
                },
                TreeMeta {
                    attr: 2,
                    root: 400,
                    height: 4,
                },
            ],
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Probe,
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Table,
        });
        roundtrip(LogRecord::StructureDone {
            structure: StructureId::Index(5),
        });
        roundtrip(LogRecord::BulkCommit);
        roundtrip(LogRecord::Progress {
            structure: StructureId::Index(3),
            done: 123_456,
        });
        roundtrip(LogRecord::Progress {
            structure: StructureId::Table,
            done: 0,
        });
    }

    #[test]
    fn empty_key_list() {
        roundtrip(LogRecord::BulkBegin {
            probe_attr: 3,
            keys: vec![],
        });
    }
}
