//! The crash-at-every-I/O campaign: the executable proof of §3.2's
//! roll-forward recovery.
//!
//! For a seeded workload the campaign first runs the bulk delete fault-free
//! to obtain a reference state, then sweeps a crash point over every
//! successive disk access of the run: rebuild the database, install
//! [`FaultPlan::crash_at_access`] at the `n`-th access, run, observe the
//! crash, discard volatile memory (`pool.crash()`), run [`recover`], and
//! assert via `audit_equivalence` that the recovered state matches the
//! reference. The sweep ends at the first crash point the run never
//! reaches. Works for the serial driver and the parallel fan-out driver
//! alike (`workers` selects).

use bd_btree::Key;
use bd_core::{audit_equivalence, Database, TableId};
use bd_storage::FaultPlan;

use crate::driver::{recover, run_bulk_delete_parallel, CrashInjector, WalError};
use crate::log::LogManager;

/// What a completed campaign covered.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Crash points swept (one per disk access the run issued; every one
    /// recovered to the reference state).
    pub crash_points: usize,
    /// Disk accesses of the fault-free run (the sweep's upper bound).
    pub fault_free_accesses: u64,
    /// Victim rows each run deleted.
    pub deleted: usize,
}

/// Sweep a crash over every disk access of a recoverable bulk delete.
///
/// `build` must deterministically reconstruct the same database and return
/// the same [`TableId`] on every call; `workers <= 1` exercises the serial
/// driver, `workers > 1` the parallel fan-out driver. `limit` optionally
/// caps the number of crash points (for smoke runs); `None` sweeps until
/// the run outruns the crash point.
///
/// Returns [`WalError::Divergence`] for the first crash point whose
/// recovered state does not match the fault-free reference.
pub fn crash_at_every_io<F>(
    mut build: F,
    probe_attr: usize,
    d_keys: &[Key],
    workers: usize,
    limit: Option<usize>,
) -> Result<CampaignReport, WalError>
where
    F: FnMut() -> (Database, TableId),
{
    // Reference: the same workload, no faults.
    let (mut reference, tid) = build();
    let ref_c0 = reference.pool().with_disk(|d| d.accesses());
    let deleted = {
        let log = LogManager::new();
        run_bulk_delete_parallel(
            &mut reference,
            tid,
            probe_attr,
            d_keys,
            &log,
            CrashInjector::none(),
            workers,
        )?
    };
    let fault_free_accesses = reference.pool().with_disk(|d| d.accesses()) - ref_c0;

    let mut crash_points = 0usize;
    let mut n: u64 = 0;
    loop {
        n += 1;
        if let Some(lim) = limit {
            if crash_points >= lim {
                break;
            }
        }
        let (mut db, tid_n) = build();
        assert_eq!(tid, tid_n, "build() must be deterministic");
        // The pre-statement state must be on stable storage before the
        // sweep: a crash on the statement's first access discards only the
        // statement's work, not the table build sitting dirty in the pool.
        db.pool().flush_all()?;
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|d| d.accesses());
        db.pool()
            .with_disk(|d| d.set_fault_plan(FaultPlan::new().crash_at_access(c0 + n)));

        match run_bulk_delete_parallel(
            &mut db,
            tid,
            probe_attr,
            d_keys,
            &log,
            CrashInjector::none(),
            workers,
        ) {
            Ok(_) => break, // the run finished under the crash point: done
            Err(WalError::Crashed(_)) => {
                // Volatile memory is gone; stable storage (disk pages +
                // log) survives. Clear the plan so recovery runs fault-free.
                db.pool().crash();
                db.pool().with_disk(|d| d.clear_fault_plan());
                recover(&mut db, tid, &log, &[])?;
                let eq = audit_equivalence(&reference, &db, tid)?;
                if !eq.is_clean() {
                    return Err(WalError::Divergence {
                        crash_point: n,
                        details: eq.to_string(),
                    });
                }
                crash_points += 1;
            }
            Err(e) => return Err(e),
        }
    }

    Ok(CampaignReport {
        crash_points,
        fault_free_accesses,
        deleted,
    })
}
