//! The crash-at-every-I/O campaign: the executable proof of §3.2's
//! roll-forward recovery.
//!
//! For a seeded workload the campaign first runs the bulk delete fault-free
//! to obtain a reference state, then sweeps a crash point over every
//! successive disk access of the run: rebuild the database, install
//! [`FaultPlan::crash_at_access`] at the `n`-th access, run, observe the
//! crash, discard volatile memory (`pool.crash()`), run [`recover`], and
//! assert via `audit_equivalence` that the recovered state matches the
//! reference. The sweep ends at the first crash point the run never
//! reaches. Works for the serial driver and the parallel fan-out driver
//! alike (`workers` selects).

use bd_btree::Key;
use bd_core::{audit_catalog, audit_equivalence, Database, DbError, TableId};
use bd_storage::{FaultPlan, FaultSpec, StorageError};

use crate::driver::{
    recover, recover_media_report, run_bulk_delete_parallel, CrashInjector, MediaRecovery, WalError,
};
use crate::log::LogManager;

/// What a completed campaign covered.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Crash points swept (one per disk access the run issued; every one
    /// recovered to the reference state).
    pub crash_points: usize,
    /// Disk accesses of the fault-free run (the sweep's upper bound).
    pub fault_free_accesses: u64,
    /// Victim rows each run deleted.
    pub deleted: usize,
}

/// Sweep a crash over every disk access of a recoverable bulk delete.
///
/// `build` must deterministically reconstruct the same database and return
/// the same [`TableId`] on every call; `workers <= 1` exercises the serial
/// driver, `workers > 1` the parallel fan-out driver. `limit` optionally
/// caps the number of crash points (for smoke runs); `None` sweeps until
/// the run outruns the crash point.
///
/// Returns [`WalError::Divergence`] for the first crash point whose
/// recovered state does not match the fault-free reference.
pub fn crash_at_every_io<F>(
    build: F,
    probe_attr: usize,
    d_keys: &[Key],
    workers: usize,
    limit: Option<usize>,
) -> Result<CampaignReport, WalError>
where
    F: FnMut() -> (Database, TableId),
{
    crash_at_every_io_from(build, probe_attr, d_keys, workers, 0, limit)
}

/// [`crash_at_every_io`] starting the sweep at access `start + 1` instead
/// of access 1. A late `start` targets the tail of the access stream —
/// the hash phases run last, so this is how a test covers crash points
/// inside them (and resume-from-progress deep into a pass) without paying
/// for the thousands of earlier crash points of a large table.
pub fn crash_at_every_io_from<F>(
    mut build: F,
    probe_attr: usize,
    d_keys: &[Key],
    workers: usize,
    start: u64,
    limit: Option<usize>,
) -> Result<CampaignReport, WalError>
where
    F: FnMut() -> (Database, TableId),
{
    // Reference: the same workload, no faults.
    let (mut reference, tid) = build();
    let ref_c0 = reference.pool().with_disk(|d| d.accesses());
    let deleted = {
        let log = LogManager::new();
        run_bulk_delete_parallel(
            &mut reference,
            tid,
            probe_attr,
            d_keys,
            &log,
            CrashInjector::none(),
            workers,
        )?
    };
    let fault_free_accesses = reference.pool().with_disk(|d| d.accesses()) - ref_c0;

    let mut crash_points = 0usize;
    let mut n: u64 = start;
    loop {
        n += 1;
        if let Some(lim) = limit {
            if crash_points >= lim {
                break;
            }
        }
        let (mut db, tid_n) = build();
        assert_eq!(tid, tid_n, "build() must be deterministic");
        // The pre-statement state must be on stable storage before the
        // sweep: a crash on the statement's first access discards only the
        // statement's work, not the table build sitting dirty in the pool.
        db.pool().flush_all()?;
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|d| d.accesses());
        db.pool()
            .with_disk(|d| d.set_fault_plan(FaultPlan::new().crash_at_access(c0 + n)));

        match run_bulk_delete_parallel(
            &mut db,
            tid,
            probe_attr,
            d_keys,
            &log,
            CrashInjector::none(),
            workers,
        ) {
            Ok(_) => break, // the run finished under the crash point: done
            Err(WalError::Crashed(_)) => {
                // Volatile memory is gone; stable storage (disk pages +
                // log) survives. Clear the plan so recovery runs fault-free.
                db.pool().crash();
                db.pool().with_disk(|d| d.clear_fault_plan());
                recover(&mut db, tid, &log, &[])?;
                let eq = audit_equivalence(&reference, &db, tid)?;
                if !eq.is_clean() {
                    return Err(WalError::Divergence {
                        crash_point: n,
                        details: eq.to_string(),
                    });
                }
                let cat = audit_catalog(&db, tid)?;
                if !cat.is_clean() {
                    return Err(WalError::Divergence {
                        crash_point: n,
                        details: format!("catalog audit after recovery: {cat}"),
                    });
                }
                crash_points += 1;
            }
            Err(e) => return Err(e),
        }
    }

    Ok(CampaignReport {
        crash_points,
        fault_free_accesses,
        deleted,
    })
}

/// What a completed torn-write sweep covered.
#[derive(Debug, Clone)]
pub struct TornWriteReport {
    /// Tears that corrupted a page detectably (its post-run disk checksum
    /// mismatched, or the run itself died on the mismatch read); every one
    /// was media-recovered to the reference state.
    pub torn_points: usize,
    /// Tears that left no detectable damage. Bulk-delete writes often
    /// change only a page's front half (a heap delete clears slot
    /// directory entries), and a tear preserves exactly the front half —
    /// the persisted image equals the intended one. A later full rewrite
    /// of the page also heals a tear before anything reads it.
    pub silent_points: usize,
    /// Write accesses the sweep managed to tear (torn + silent). Sweep
    /// positions that landed on reads are not counted — a torn-write
    /// fault only arms on writes.
    pub accesses_swept: u64,
    /// Victim rows each run deleted.
    pub deleted: usize,
    /// Structures rebuilt across every torn point (B-trees bulk-loaded plus
    /// hash chains re-inserted). With catalog-precise classification this
    /// is at most one per torn point.
    pub structures_rebuilt: usize,
    /// The worst single torn point's rebuild count. The old heuristic
    /// classifier rebuilt *every* B-tree for any unattributed tear; the
    /// catalog pins this at ≤ 1 (one page has one owner).
    pub max_rebuilt_per_point: usize,
    /// Torn pages that were free in the catalog and were healed with no
    /// rebuild at all.
    pub healed_free: usize,
}

/// Sweep a torn write over every *write* access of a recoverable bulk
/// delete (the write-side mirror of [`crash_at_every_io`]).
///
/// For each position `n` past `start` the run executes with a
/// [`FaultSpec::write_at_access`]`.torn()` fault at access `n`: that write
/// is acknowledged but persists only half the page, with the checksum
/// recording the *intended* image. If the run later reads the torn page it
/// dies on [`StorageError::ChecksumMismatch`]; if not, a post-run scrub
/// ([`corrupt_pages`]) finds the latent damage. Either way the campaign
/// discards volatile memory, runs [`recover_media`] over the damaged
/// pages — which heals them and **rebuilds** the owning structures from
/// the surviving heap and the WAL's materialized rows — and asserts
/// equivalence with the fault-free reference.
///
/// Sweep positions that land on read accesses tear nothing (the fault
/// arms only on writes) and are skipped. The sweep ends at the first
/// position the run never reaches; `limit` optionally caps the number of
/// *torn* positions for smoke runs, and `start` skips the read-heavy
/// early region (materialization) when time is short.
///
/// [`corrupt_pages`]: bd_storage::SimDisk::corrupt_pages
pub fn torn_write_at_every_io<F>(
    mut build: F,
    probe_attr: usize,
    d_keys: &[Key],
    workers: usize,
    start: u64,
    limit: Option<usize>,
) -> Result<TornWriteReport, WalError>
where
    F: FnMut() -> (Database, TableId),
{
    // Reference: the same workload, no faults.
    let (mut reference, tid) = build();
    let deleted = {
        let log = LogManager::new();
        run_bulk_delete_parallel(
            &mut reference,
            tid,
            probe_attr,
            d_keys,
            &log,
            CrashInjector::none(),
            workers,
        )?
    };

    let mut torn_points = 0usize;
    let mut silent_points = 0usize;
    let mut structures_rebuilt = 0usize;
    let mut max_rebuilt_per_point = 0usize;
    let mut healed_free = 0usize;
    let mut n: u64 = start;
    loop {
        n += 1;
        if let Some(lim) = limit {
            if torn_points >= lim {
                break;
            }
        }
        let (mut db, tid_n) = build();
        assert_eq!(tid, tid_n, "build() must be deterministic");
        // The pre-statement state must be on stable storage before the
        // sweep (same contract as the crash campaign).
        db.pool().flush_all()?;
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|d| d.accesses());
        db.pool().with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_at_access(c0 + n).torn()))
        });

        let run = run_bulk_delete_parallel(
            &mut db,
            tid,
            probe_attr,
            d_keys,
            &log,
            CrashInjector::none(),
            workers,
        );
        let used = db.pool().with_disk(|d| d.accesses()) - c0;
        let fired = db.pool().with_disk(|d| d.fault_plan_fired());
        match run {
            Ok(_) if fired == 0 => {
                if n >= used {
                    break; // the run finished under the sweep point: done
                }
                continue; // position n was a read: nothing torn
            }
            Ok(_) => {
                // The tear landed but the run finished: the damage (if
                // any survived later rewrites) is latent. Surface it the
                // way a restart would — drop the cache, scrub the disk.
                db.pool().crash();
                db.pool().with_disk(|d| d.clear_fault_plan());
                let corrupt = db.pool().with_disk(|d| d.corrupt_pages());
                if corrupt.is_empty() {
                    silent_points += 1;
                    continue;
                }
                let (_, media) = recover_media_report(&mut db, tid, &log, &[], &corrupt)?;
                tally(&media, &mut structures_rebuilt, &mut max_rebuilt_per_point);
                healed_free += media.healed_free;
                torn_points += 1;
            }
            Err(WalError::Db(DbError::Storage(StorageError::ChecksumMismatch(_)))) => {
                // The run read the torn page back and died on it.
                db.pool().crash();
                db.pool().with_disk(|d| d.clear_fault_plan());
                let corrupt = db.pool().with_disk(|d| d.corrupt_pages());
                let (_, media) = recover_media_report(&mut db, tid, &log, &[], &corrupt)?;
                tally(&media, &mut structures_rebuilt, &mut max_rebuilt_per_point);
                healed_free += media.healed_free;
                torn_points += 1;
            }
            Err(e) => return Err(e),
        }
        let eq = audit_equivalence(&reference, &db, tid)?;
        if !eq.is_clean() {
            return Err(WalError::Divergence {
                crash_point: n,
                details: eq.to_string(),
            });
        }
        let cat = audit_catalog(&db, tid)?;
        if !cat.is_clean() {
            return Err(WalError::Divergence {
                crash_point: n,
                details: format!("catalog audit after media recovery: {cat}"),
            });
        }
    }

    Ok(TornWriteReport {
        torn_points,
        silent_points,
        accesses_swept: (torn_points + silent_points) as u64,
        deleted,
        structures_rebuilt,
        max_rebuilt_per_point,
        healed_free,
    })
}

/// Fold one media-recovery report into the sweep's rebuild counters.
fn tally(media: &MediaRecovery, total: &mut usize, max_per_point: &mut usize) {
    let here = media.structures_rebuilt();
    *total += here;
    *max_per_point = (*max_per_point).max(here);
}

/// What an erasure-campaign fault sweep covered.
#[derive(Debug, Clone)]
pub struct ErasureSweepReport {
    /// Fault points that damaged the run and were recovered: crash points
    /// for [`erasure_crash_at_every_io`], surfaced tears for
    /// [`erasure_torn_write_at_every_io`]. At every one the recovered
    /// database matched the reference, the catalog audit was clean, and
    /// the proof-of-deletion found zero residue.
    pub recovered_points: usize,
    /// Torn positions that left no detectable damage (torn sweep only).
    pub silent_points: usize,
    /// Disk accesses of the fault-free campaign (the sweep's bound).
    pub fault_free_accesses: u64,
    /// Victim rows the reference campaign deleted across the cascade.
    pub deleted: usize,
    /// Manifest steps of the cascade (≥ tables touched).
    pub steps: usize,
}

/// Per-sweep-point bookkeeping shared by the two erasure sweeps: audits
/// the recovered database against the reference for every campaign table
/// and re-proves the deletion with the externally-held sensitive list —
/// the post-redaction log no longer remembers it, exactly as designed.
fn check_erasure_point(
    reference: &Database,
    db: &Database,
    log: &LogManager,
    tables: &[TableId],
    sensitive: &[u64],
    n: u64,
) -> Result<(), WalError> {
    let raw = log.raw_bytes();
    let proof = bd_core::verify_erasure(db, sensitive, &[("wal", &raw)])?;
    if !proof.is_clean() {
        return Err(WalError::Divergence {
            crash_point: n,
            details: format!("erasure proof after recovery: {}", proof.render()),
        });
    }
    for &t in tables {
        let eq = audit_equivalence(reference, db, t)?;
        if !eq.is_clean() {
            return Err(WalError::Divergence {
                crash_point: n,
                details: format!("table {t}: {eq}"),
            });
        }
        let cat = audit_catalog(db, t)?;
        if !cat.is_clean() {
            return Err(WalError::Divergence {
                crash_point: n,
                details: format!("table {t} catalog: {cat}"),
            });
        }
    }
    Ok(())
}

/// Plan the cascade and capture its sensitive values on a freshly built
/// database (both sweeps need the pair before arming any fault).
fn plan_and_sensitive(
    db: &Database,
    root: TableId,
    root_attr: usize,
    d_keys: &[Key],
) -> Result<(bd_core::CascadePlan, Vec<u64>), WalError> {
    let plan = bd_core::plan_cascade(db, root, root_attr, d_keys)?;
    let sensitive = bd_core::collect_sensitive(db, &plan)?;
    Ok((plan, sensitive))
}

/// True when the log carries the campaign's commit marker. The begin
/// record is redacted at commit, so [`crate::erasure::recover_campaign`]
/// returning `None` *plus* a commit marker means the fault surfaced after
/// the campaign closed — in the proof's own post-commit scan, the one
/// reader that touches pages nothing else re-reads.
fn campaign_committed(log: &LogManager) -> Result<bool, WalError> {
    Ok(log
        .records()?
        .iter()
        .any(|r| matches!(r, crate::record::LogRecord::CampaignCommit { .. })))
}

/// The restart path for damage surfacing after commit: accept the torn
/// images, re-run the idempotent whole-database scrub (it re-derives
/// every byte it writes), and flush. The campaign itself is closed and
/// durable, so there is nothing to resume — only physical healing.
fn heal_after_commit(db: &mut Database, corrupt: &[bd_storage::PageId]) -> Result<(), WalError> {
    db.pool()
        .with_disk(|d| -> Result<(), StorageError> {
            for &pid in corrupt {
                d.accept_torn_page(pid)?;
            }
            Ok(())
        })
        .map_err(DbError::from)?;
    bd_core::scrub_database(db)?;
    db.pool().flush_all()?;
    Ok(())
}

/// Sweep a crash over every disk access of a whole erasure campaign —
/// the cascade's bulk deletes, the physical scrub, and the commit tail.
///
/// `build` must deterministically reconstruct the same multi-table
/// database (with its foreign keys) and return the cascade root's table
/// id. At every crash point the campaign is recovered with
/// [`crate::erasure::recover_campaign`] and must run to completion: the
/// recovered state must match the fault-free reference on every campaign
/// table, the catalog audits must be clean, and the proof-of-deletion —
/// checked against a sensitive list held *outside* the database, since
/// redaction destroys the log's copy — must find zero residue.
pub fn erasure_crash_at_every_io<F>(
    mut build: F,
    root_attr: usize,
    d_keys: &[Key],
    workers: usize,
    start: u64,
    limit: Option<usize>,
) -> Result<ErasureSweepReport, WalError>
where
    F: FnMut() -> (Database, TableId),
{
    use crate::erasure::{recover_campaign, run_erasure_campaign};
    let pacer = bd_storage::Pacer::new();

    // Reference: the same campaign, no faults.
    let (mut reference, root) = build();
    reference.pool().flush_all()?;
    let (plan, sensitive) = plan_and_sensitive(&reference, root, root_attr, d_keys)?;
    let mut tables: Vec<TableId> = plan.steps.iter().map(|s| s.table).collect();
    tables.sort_unstable();
    tables.dedup();
    let ref_c0 = reference.pool().with_disk(|d| d.accesses());
    let ref_log = LogManager::new();
    let ref_out = run_erasure_campaign(&mut reference, &plan, &ref_log, workers, &pacer)?;
    if !ref_out.report.is_clean() {
        return Err(WalError::Divergence {
            crash_point: 0,
            details: format!("fault-free proof: {}", ref_out.report.render()),
        });
    }
    let fault_free_accesses = reference.pool().with_disk(|d| d.accesses()) - ref_c0;

    let mut recovered_points = 0usize;
    let mut n: u64 = start;
    loop {
        n += 1;
        if let Some(lim) = limit {
            if recovered_points >= lim {
                break;
            }
        }
        let (mut db, root_n) = build();
        assert_eq!(root, root_n, "build() must be deterministic");
        db.pool().flush_all()?;
        let (plan_n, _) = plan_and_sensitive(&db, root, root_attr, d_keys)?;
        assert_eq!(plan, plan_n, "cascade plan must be deterministic");
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|d| d.accesses());
        db.pool()
            .with_disk(|d| d.set_fault_plan(FaultPlan::new().crash_at_access(c0 + n)));

        match run_erasure_campaign(&mut db, &plan_n, &log, workers, &pacer) {
            Ok(_) => break, // the campaign outran the crash point: done
            Err(WalError::Crashed(_))
            | Err(WalError::Db(DbError::Storage(StorageError::SimulatedCrash))) => {
                db.pool().crash();
                db.pool().with_disk(|d| d.clear_fault_plan());
                let resumed = recover_campaign(&mut db, &log, workers, &[])?;
                if resumed.is_none() {
                    // Legitimate only when the crash landed inside the
                    // post-commit proof scan: every step and the scrub
                    // were flushed before the commit marker, so the disk
                    // is already the final state and the restart has
                    // nothing to do but re-prove it.
                    if !campaign_committed(&log)? {
                        return Err(WalError::Divergence {
                            crash_point: n,
                            details: "crashed campaign not found open in the log".into(),
                        });
                    }
                }
                check_erasure_point(&reference, &db, &log, &tables, &sensitive, n)?;
                recovered_points += 1;
            }
            Err(e) => return Err(e),
        }
    }

    Ok(ErasureSweepReport {
        recovered_points,
        silent_points: 0,
        fault_free_accesses,
        deleted: ref_out.deleted,
        steps: plan.steps.len(),
    })
}

/// Sweep a torn write over every write access of a whole erasure
/// campaign (the write-side mirror of [`erasure_crash_at_every_io`]).
///
/// Tears surfaced while the campaign is open (a read dies on the torn
/// page's checksum) recover through
/// [`crate::erasure::recover_campaign`], which heals the pages, rebuilds
/// what the in-flight step damaged, and re-runs the scrub. Tears that
/// stay latent past commit (the campaign finished; the damage sits in a
/// page nothing re-read, scrub-phase writes included) are surfaced the
/// way a restart would — drop the cache, scrub the disk for checksum
/// mismatches — then healed and re-scrubbed: scrub writes never change
/// live bytes, so accepting the torn image and re-running the scrub
/// restores both structure and proof.
pub fn erasure_torn_write_at_every_io<F>(
    mut build: F,
    root_attr: usize,
    d_keys: &[Key],
    workers: usize,
    start: u64,
    limit: Option<usize>,
) -> Result<ErasureSweepReport, WalError>
where
    F: FnMut() -> (Database, TableId),
{
    use crate::erasure::{recover_campaign, run_erasure_campaign};
    let pacer = bd_storage::Pacer::new();

    let (mut reference, root) = build();
    reference.pool().flush_all()?;
    let (plan, sensitive) = plan_and_sensitive(&reference, root, root_attr, d_keys)?;
    let mut tables: Vec<TableId> = plan.steps.iter().map(|s| s.table).collect();
    tables.sort_unstable();
    tables.dedup();
    let ref_c0 = reference.pool().with_disk(|d| d.accesses());
    let ref_log = LogManager::new();
    let ref_out = run_erasure_campaign(&mut reference, &plan, &ref_log, workers, &pacer)?;
    if !ref_out.report.is_clean() {
        return Err(WalError::Divergence {
            crash_point: 0,
            details: format!("fault-free proof: {}", ref_out.report.render()),
        });
    }
    let fault_free_accesses = reference.pool().with_disk(|d| d.accesses()) - ref_c0;

    let mut recovered_points = 0usize;
    let mut silent_points = 0usize;
    let mut n: u64 = start;
    loop {
        n += 1;
        if let Some(lim) = limit {
            if recovered_points >= lim {
                break;
            }
        }
        let (mut db, root_n) = build();
        assert_eq!(root, root_n, "build() must be deterministic");
        db.pool().flush_all()?;
        let (plan_n, _) = plan_and_sensitive(&db, root, root_attr, d_keys)?;
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|d| d.accesses());
        db.pool().with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_at_access(c0 + n).torn()))
        });

        let run = run_erasure_campaign(&mut db, &plan_n, &log, workers, &pacer);
        let used = db.pool().with_disk(|d| d.accesses()) - c0;
        let fired = db.pool().with_disk(|d| d.fault_plan_fired());
        match run {
            Ok(_) if fired == 0 => {
                if n >= used {
                    break; // the campaign outran the sweep point: done
                }
                continue; // position n was a read: nothing torn
            }
            Ok(_) => {
                // The tear landed but the campaign committed. Surface any
                // latent damage like a restart would.
                db.pool().crash();
                db.pool().with_disk(|d| d.clear_fault_plan());
                let corrupt = db.pool().with_disk(|d| d.corrupt_pages());
                if corrupt.is_empty() {
                    silent_points += 1;
                    continue;
                }
                // The campaign is committed (and its begin record
                // redacted), so there is nothing to resume — heal the
                // torn images and re-run the scrub.
                heal_after_commit(&mut db, &corrupt)?;
                check_erasure_point(&reference, &db, &log, &tables, &sensitive, n)?;
                recovered_points += 1;
            }
            Err(WalError::Db(DbError::Storage(StorageError::ChecksumMismatch(_)))) => {
                // The campaign read the torn page back and died on it.
                db.pool().crash();
                db.pool().with_disk(|d| d.clear_fault_plan());
                let corrupt = db.pool().with_disk(|d| d.corrupt_pages());
                let resumed = recover_campaign(&mut db, &log, workers, &corrupt)?;
                if resumed.is_none() {
                    // Legitimate only when the torn page stayed latent
                    // through commit and the mismatch fired in the proof
                    // scan itself — same restart path as the Ok case.
                    if !campaign_committed(&log)? {
                        return Err(WalError::Divergence {
                            crash_point: n,
                            details: "torn campaign not found open in the log".into(),
                        });
                    }
                    heal_after_commit(&mut db, &corrupt)?;
                }
                check_erasure_point(&reference, &db, &log, &tables, &sensitive, n)?;
                recovered_points += 1;
            }
            Err(e) => return Err(e),
        }
    }

    Ok(ErasureSweepReport {
        recovered_points,
        silent_points,
        fault_free_accesses,
        deleted: ref_out.deleted,
        steps: plan.steps.len(),
    })
}
