//! Display strings and `From` conversions of the recovery error type.
//!
//! Callers match on these (the campaign distinguishes `Crashed` from
//! everything else) and operators read them; both contracts are pinned
//! here so a refactor cannot silently change them.

use bd_core::DbError;
use bd_storage::{Rid, StorageError};
use bd_wal::{CrashSite, WalError};

#[test]
fn disk_crash_becomes_crashed_in_io() {
    // The disk's crash point surfaces as a *crash*, never an engine error:
    // the caller must run recovery, exactly as for an injector site.
    let via_db = WalError::from(DbError::Storage(StorageError::SimulatedCrash));
    assert!(matches!(via_db, WalError::Crashed(CrashSite::InIo)));
    let via_storage = WalError::from(StorageError::SimulatedCrash);
    assert!(matches!(via_storage, WalError::Crashed(CrashSite::InIo)));
}

#[test]
fn other_storage_errors_stay_engine_errors() {
    let e = WalError::from(StorageError::InjectedFault(7));
    assert!(
        matches!(
            e,
            WalError::Db(DbError::Storage(StorageError::InjectedFault(7)))
        ),
        "got {e:?}"
    );
    let e = WalError::from(DbError::NoProbeIndex { attr: 3 });
    assert!(matches!(e, WalError::Db(DbError::NoProbeIndex { attr: 3 })));
}

#[test]
fn wal_error_display_strings() {
    assert_eq!(
        WalError::Crashed(CrashSite::InIo).to_string(),
        "simulated crash at InIo"
    );
    let d = WalError::Divergence {
        crash_point: 42,
        details: "audit found 1 divergence(s)".into(),
    };
    assert_eq!(
        d.to_string(),
        "recovery diverged after a crash at disk access 42: audit found 1 divergence(s)"
    );
    // Db errors pass their inner Display through untouched.
    let inner = DbError::Storage(StorageError::SimulatedCrash);
    assert_eq!(WalError::Db(inner.clone()).to_string(), inner.to_string());
    assert_eq!(
        WalError::CorruptLog("unknown record tag 9".into()).to_string(),
        "corrupt log record: unknown record tag 9"
    );
}

#[test]
fn storage_fault_display_strings() {
    assert_eq!(
        StorageError::InjectedFault(9).to_string(),
        "injected fault at page 9"
    );
    assert_eq!(
        StorageError::ChecksumMismatch(4).to_string(),
        "checksum mismatch at page 4: torn write detected"
    );
    assert_eq!(
        StorageError::SimulatedCrash.to_string(),
        "simulated crash: disk unavailable past the crash point"
    );
    assert_eq!(
        StorageError::Cancelled.to_string(),
        "task cancelled: a concurrent sibling task failed"
    );
    // The retry-relevant errors are distinguishable by value, which is what
    // the buffer pool's retry filter relies on.
    assert_ne!(
        StorageError::InjectedFault(1),
        StorageError::ChecksumMismatch(1)
    );
    assert!(StorageError::SlotEmpty(Rid::new(2, 3))
        .to_string()
        .contains("empty"));
}
