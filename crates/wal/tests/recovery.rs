//! Crash-recovery tests: a bulk delete interrupted at every interesting
//! point must, after restart, converge to exactly the no-crash state.

use bd_core::{Database, DatabaseConfig, IndexDef, Tuple};
use bd_txn::SideOp;
use bd_wal::{recover, run_bulk_delete, CrashInjector, CrashSite, LogManager};
use bd_workload::TableSpec;

// Phases for this layout: 0 = probe index, 1 = table, 2–3 = secondary
// B-trees on attrs 1 and 2, 4 = hash index on attr 3 (hash runs last).
fn setup(n_rows: usize) -> (Database, usize, Vec<u64>) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    db.create_hash_index(w.tid, 3).unwrap();
    (db, w.tid, w.a_values)
}

fn reference_state(n_rows: usize, victims: &[u64]) -> Vec<(u64, u64, u64, u64)> {
    let (mut db, tid, _) = setup(n_rows);
    let log = LogManager::new();
    let n = run_bulk_delete(&mut db, tid, 0, victims, &log, CrashInjector::none()).unwrap();
    assert_eq!(n, victims.len());
    db.check_consistency(tid).unwrap();
    snapshot(&db, tid)
}

fn snapshot(db: &Database, tid: usize) -> Vec<(u64, u64, u64, u64)> {
    let table = db.table(tid).unwrap();
    let mut rows: Vec<(u64, u64, u64, u64)> = table
        .heap
        .scan()
        .map(|(_, bytes)| {
            let t = table.schema.decode(&bytes);
            (t.attr(0), t.attr(1), t.attr(2), t.attr(3))
        })
        .collect();
    rows.sort_unstable();
    rows
}

#[test]
fn no_crash_run_commits() {
    let (mut db, tid, a_values) = setup(1500);
    let victims: Vec<u64> = a_values.iter().copied().step_by(4).collect();
    let log = LogManager::new();
    let n = run_bulk_delete(&mut db, tid, 0, &victims, &log, CrashInjector::none()).unwrap();
    assert_eq!(n, victims.len());
    db.check_consistency(tid).unwrap();
    // Recovery over a committed log is a no-op.
    let redone = recover(&mut db, tid, &log, &[]).unwrap();
    assert_eq!(redone, 0);
}

fn crash_and_recover_at(site: CrashSite) {
    let n_rows = 1500;
    let (mut db, tid, a_values) = setup(n_rows);
    let victims: Vec<u64> = a_values.iter().copied().step_by(4).collect();
    let expect = reference_state(n_rows, &victims);

    let log = LogManager::new();
    let err =
        run_bulk_delete(&mut db, tid, 0, &victims, &log, CrashInjector::at(site)).unwrap_err();
    assert!(matches!(err, bd_wal::WalError::Crashed(s) if s == site));

    // Volatile memory is lost; only the disk and the log survive.
    db.pool().crash();

    let n = recover(&mut db, tid, &log, &[]).unwrap();
    assert_eq!(n, victims.len());
    db.check_consistency(tid).unwrap();
    assert_eq!(snapshot(&db, tid), expect, "crash site {site:?}");

    // Recovery is idempotent: a second restart finds a committed log.
    db.pool().crash();
    assert_eq!(recover(&mut db, tid, &log, &[]).unwrap(), 0);
    db.check_consistency(tid).unwrap();
}

#[test]
fn crash_after_materialize() {
    crash_and_recover_at(CrashSite::AfterMaterialize);
}

#[test]
fn crash_mid_probe_index_pass() {
    crash_and_recover_at(CrashSite::MidStructure(0));
}

#[test]
fn crash_after_probe_index_pass() {
    crash_and_recover_at(CrashSite::AfterStructure(0));
}

#[test]
fn crash_mid_table_pass() {
    crash_and_recover_at(CrashSite::MidStructure(1));
}

#[test]
fn crash_after_table_pass() {
    crash_and_recover_at(CrashSite::AfterStructure(1));
}

#[test]
fn crash_mid_first_secondary_index() {
    crash_and_recover_at(CrashSite::MidStructure(2));
}

#[test]
fn crash_mid_last_secondary_index() {
    crash_and_recover_at(CrashSite::MidStructure(3));
}

#[test]
fn crash_mid_hash_pass() {
    crash_and_recover_at(CrashSite::MidStructure(4));
}

#[test]
fn crash_just_before_commit() {
    crash_and_recover_at(CrashSite::AfterStructure(4));
}

#[test]
fn crash_after_last_btree_pass() {
    crash_and_recover_at(CrashSite::AfterStructure(3));
}

#[test]
fn recovery_applies_pending_side_files_last() {
    let (mut db, tid, a_values) = setup(800);
    let victims: Vec<u64> = a_values.iter().copied().step_by(5).collect();
    let log = LogManager::new();
    let err = run_bulk_delete(
        &mut db,
        tid,
        0,
        &victims,
        &log,
        CrashInjector::at(CrashSite::MidStructure(2)),
    )
    .unwrap_err();
    assert!(matches!(err, bd_wal::WalError::Crashed(_)));
    db.pool().crash();

    // An updater's side-file captured one pending index-1 insert; §3.2
    // requires it to be applied only after the bulk delete finishes. The
    // entry uses a synthetic RID outside the heap, so the check is purely
    // about ordering and index content (the crash_recovery example covers
    // the full updater-row case).
    let new_row = Tuple::new(vec![9_999_001, 8_888_001, 7_777_001, 3]);
    let side = vec![(
        1usize,
        vec![SideOp::Insert {
            key: new_row.attr(1),
            rid: bd_storage::Rid::new(999_999, 0),
        }],
    )];
    let n = recover(&mut db, tid, &log, &side).unwrap();
    assert_eq!(n, victims.len());
    let table = db.table(tid).unwrap();
    let hits = table
        .index_on(1)
        .unwrap()
        .tree
        .search(new_row.attr(1))
        .unwrap();
    assert_eq!(hits, vec![bd_storage::Rid::new(999_999, 0)]);
}

#[test]
fn log_survives_multiple_bulk_deletes() {
    let (mut db, tid, a_values) = setup(1000);
    let log = LogManager::new();
    let first: Vec<u64> = a_values.iter().copied().step_by(4).collect();
    run_bulk_delete(&mut db, tid, 0, &first, &log, CrashInjector::none()).unwrap();
    let second: Vec<u64> = a_values.iter().copied().skip(1).step_by(4).collect();
    let err = run_bulk_delete(
        &mut db,
        tid,
        0,
        &second,
        &log,
        CrashInjector::at(CrashSite::MidStructure(1)),
    )
    .unwrap_err();
    assert!(matches!(err, bd_wal::WalError::Crashed(_)));
    db.pool().crash();
    // Recovery must pick the *second* (incomplete) bulk delete.
    let n = recover(&mut db, tid, &log, &[]).unwrap();
    assert_eq!(n, second.len());
    db.check_consistency(tid).unwrap();
    let remaining = db.table(tid).unwrap().heap.len();
    assert_eq!(remaining, 1000 - first.len() - second.len());
}

#[test]
fn crash_at_progress_resumes_from_last_chunk() {
    // 8000 rows, 80% deletes => multiple 2048-victim chunks per structure.
    let (mut db, tid, a_values) = setup(8000);
    let victims: Vec<u64> = a_values
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % 5 != 0)
        .map(|(_, v)| v)
        .collect();
    assert!(victims.len() > 2 * 2048, "need several progress chunks");
    let expect = {
        let (mut db2, tid2, _) = setup(8000);
        let log2 = LogManager::new();
        run_bulk_delete(&mut db2, tid2, 0, &victims, &log2, CrashInjector::none()).unwrap();
        snapshot(&db2, tid2)
    };

    // Crash after the *second* progress record of the table pass (phase 1),
    // so the log claims two durable chunks when recovery starts.
    let log = LogManager::new();
    let err = run_bulk_delete(
        &mut db,
        tid,
        0,
        &victims,
        &log,
        CrashInjector::at(CrashSite::AtProgress(1, 2)),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        bd_wal::WalError::Crashed(CrashSite::AtProgress(1, 2))
    ));
    let pre_crash_records = log.len();

    db.pool().crash();
    let n = recover(&mut db, tid, &log, &[]).unwrap();
    assert_eq!(n, victims.len());
    db.check_consistency(tid).unwrap();
    assert_eq!(snapshot(&db, tid), expect);

    // Resume skipped durable work, minus the one-chunk back-off: the
    // first post-recovery progress record re-covers the *last* claimed
    // chunk (it may be half-flushed under the parallel driver) but skips
    // everything before it.
    let records = log.records().unwrap();
    let (pre, post): (Vec<_>, Vec<_>) = records
        .iter()
        .enumerate()
        .filter_map(|(i, r)| match r {
            bd_wal::LogRecord::Progress {
                structure: bd_wal::StructureId::Table,
                done,
            } => Some((i, *done)),
            _ => None,
        })
        .partition(|(i, _)| *i < pre_crash_records);
    assert_eq!(pre.len(), 2, "two table progress records before the crash");
    let first_post = post.first().expect("recovery re-logs table progress").1;
    assert_eq!(
        first_post, pre[1].1,
        "recovery re-runs the last claimed chunk"
    );
    assert!(
        first_post > pre[0].1,
        "recovery must skip chunks before the last claimed one ({} <= {})",
        first_post,
        pre[0].1
    );
}

#[test]
fn crash_at_progress_of_hash_pass() {
    // The hash phase runs last (phase 4 in this layout); crashing at its
    // second progress record exercises resume-from-progress for a hash
    // index, whose deletes run in materialized-row order so the chunk
    // boundaries match recovery's.
    let (mut db, tid, a_values) = setup(8000);
    let victims: Vec<u64> = a_values
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % 5 != 0)
        .map(|(_, v)| v)
        .collect();
    assert!(victims.len() > 2 * 2048, "need several progress chunks");
    let expect = {
        let (mut db2, tid2, _) = setup(8000);
        let log2 = LogManager::new();
        run_bulk_delete(&mut db2, tid2, 0, &victims, &log2, CrashInjector::none()).unwrap();
        snapshot(&db2, tid2)
    };
    let log = LogManager::new();
    let err = run_bulk_delete(
        &mut db,
        tid,
        0,
        &victims,
        &log,
        CrashInjector::at(CrashSite::AtProgress(4, 2)),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        bd_wal::WalError::Crashed(CrashSite::AtProgress(4, 2))
    ));
    db.pool().crash();
    let n = recover(&mut db, tid, &log, &[]).unwrap();
    assert_eq!(n, victims.len());
    db.check_consistency(tid).unwrap();
    assert_eq!(snapshot(&db, tid), expect);
}

#[test]
fn resume_backs_off_one_chunk_for_the_half_flushed_chunk() {
    // Regression: recovery used to resume a pass exactly at its last
    // Progress record. Under the parallel driver the pre-progress flush
    // can skip frames pinned by sibling arms, so the claimed chunk may be
    // only partly durable. This log is hand-crafted to that state: the
    // table pass claims Progress(2048) but only the first 1000 heap
    // deletes reached the disk. Resuming *at* 2048 strands rows
    // 1000..2048 forever; recovery must back off one chunk and re-run it.
    let n_rows = 4000;
    let (mut db, tid, a_values) = setup(n_rows);
    let victims: Vec<u64> = a_values.iter().copied().take(3000).collect();
    let expect = reference_state(n_rows, &victims);

    // Materialized rows exactly as the driver would log them: heap scan
    // order, every attribute.
    let victim_set: std::collections::HashSet<u64> = victims.iter().copied().collect();
    let rows: Vec<bd_wal::MaterializedRow> = {
        let table = db.table(tid).unwrap();
        table
            .heap
            .scan()
            .map(|(rid, bytes)| (rid, table.schema.decode(&bytes)))
            .filter(|(_, t)| victim_set.contains(&t.attr(0)))
            .map(|(rid, t)| bd_wal::MaterializedRow {
                rid,
                attrs: t.attrs.clone(),
            })
            .collect()
    };
    assert!(rows.len() > 2048, "the claimed chunk must be a full chunk");

    let log = LogManager::new();
    log.append(&bd_wal::LogRecord::BulkBegin {
        probe_attr: 0,
        keys: victims.clone(),
    });
    log.append(&bd_wal::LogRecord::RowsMaterialized { rows: rows.clone() });
    {
        let table = db.table_mut(tid).unwrap();
        for row in &rows[..1000] {
            table.heap.delete(row.rid).unwrap();
        }
    }
    db.pool().flush_all().unwrap();
    log.append(&bd_wal::LogRecord::Progress {
        structure: bd_wal::StructureId::Table,
        done: 2048,
    });

    db.pool().crash();
    let n = recover(&mut db, tid, &log, &[]).unwrap();
    assert_eq!(n, rows.len());
    db.check_consistency(tid).unwrap();
    assert_eq!(snapshot(&db, tid), expect);
}

#[test]
fn corrupt_log_record_fails_recovery_loudly() {
    // A log that does not decode must fail recovery with `CorruptLog`,
    // not panic and not silently skip records.
    let (mut db, tid, a_values) = setup(600);
    let victims: Vec<u64> = a_values.iter().copied().step_by(3).collect();
    let log = LogManager::new();
    let err = run_bulk_delete(
        &mut db,
        tid,
        0,
        &victims,
        &log,
        CrashInjector::at(CrashSite::MidStructure(1)),
    )
    .unwrap_err();
    assert!(matches!(err, bd_wal::WalError::Crashed(_)));
    log.append_raw(&[99, 1, 2, 3]); // unknown record tag
    db.pool().crash();
    let err = recover(&mut db, tid, &log, &[]).unwrap_err();
    assert!(matches!(err, bd_wal::WalError::CorruptLog(_)), "got {err}");
}

#[test]
fn crash_at_late_progress_of_secondary_index() {
    let (mut db, tid, a_values) = setup(8000);
    let victims: Vec<u64> = a_values.iter().copied().step_by(2).collect();
    let expect = {
        let (mut db2, tid2, _) = setup(8000);
        let log2 = LogManager::new();
        run_bulk_delete(&mut db2, tid2, 0, &victims, &log2, CrashInjector::none()).unwrap();
        snapshot(&db2, tid2)
    };
    let log = LogManager::new();
    // Phase 2 = first secondary index; crash never fires if the phase has
    // fewer chunks — guard with victims.len().
    let err = run_bulk_delete(
        &mut db,
        tid,
        0,
        &victims,
        &log,
        CrashInjector::at(CrashSite::AtProgress(2, 1)),
    )
    .unwrap_err();
    assert!(matches!(err, bd_wal::WalError::Crashed(_)));
    db.pool().crash();
    recover(&mut db, tid, &log, &[]).unwrap();
    db.check_consistency(tid).unwrap();
    assert_eq!(snapshot(&db, tid), expect);
}
