//! Fault campaigns over the background maintenance daemon: a crash or a
//! torn write at any disk access mid-recycle, mid-pack, or mid-prewarm
//! must recover to a database logically identical to one that never ran
//! maintenance at all — the daemon only moves and frees pages.

use bd_btree::{BTreeConfig, ReorgPolicy};
use bd_core::{
    audit_catalog, audit_equivalence, strategy, Database, DatabaseConfig, IndexDef, Maintainer,
    MaintenanceConfig,
};
use bd_storage::{FaultPlan, FaultSpec};
use bd_wal::{
    recover, recover_media_report, run_maintenance_cycle, LogManager, LogRecord, StructureId,
};
use bd_workload::TableSpec;

/// A pool far smaller than the working set (same rationale as the delete
/// campaigns) and small-fanout indices, so the maintenance cycle issues
/// real disk accesses at every phase: heap confirm reads, pack rewrites,
/// recycle zero-writes, prewarm reads.
fn build(n_rows: usize) -> (Database, usize) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(96 << 10));
    let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
    let cfg = BTreeConfig::with_fanout(16);
    w.attach_index(&mut db, IndexDef::secondary(0).unique().with_config(cfg))
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1).with_config(cfg))
        .unwrap();
    (db, w.tid)
}

/// Delete two thirds of the rows fault-free, leaving plenty of maintenance
/// work: emptied heap pages, sparse leaves, freed pages to recycle.
fn deleted(n_rows: usize) -> (Database, usize) {
    let (mut db, tid) = build(n_rows);
    let d: Vec<u64> = {
        let a = TableSpec::tiny(n_rows).generate_rows();
        a.iter().map(|r| r.attr(0)).filter(|k| k % 3 != 0).collect()
    };
    strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1).unwrap();
    db.pool().flush_all().unwrap();
    (db, tid)
}

fn maintainer() -> Maintainer {
    Maintainer::new(MaintenanceConfig {
        pack_subtrees: 4,
        prewarm_pages: 16,
    })
}

#[test]
fn maintenance_crash_campaign_recovers_at_every_disk_access() {
    // Fault-free probe: how many accesses does one full cycle take?
    let (mut probe, tid) = deleted(900);
    let c0 = probe.pool().with_disk(|d| d.accesses());
    run_maintenance_cycle(&mut probe, tid, &LogManager::new(), &mut maintainer()).unwrap();
    let total = probe.pool().with_disk(|d| d.accesses()) - c0;
    assert!(total > 60, "cycle issued only {total} accesses");

    // Reference: the deleted state with no maintenance — the daemon must
    // never change logical content, crash or no crash.
    let (reference, _) = deleted(900);

    let stride = (total / 80).max(1);
    let mut crash_points = 0usize;
    let mut n = 1;
    while n <= total {
        let (mut db, tid) = deleted(900);
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|d| d.accesses());
        db.pool()
            .with_disk(|d| d.set_fault_plan(FaultPlan::new().crash_at_access(c0 + n)));
        let run = run_maintenance_cycle(&mut db, tid, &log, &mut maintainer());
        assert!(run.is_err(), "access {n} of {total} did not crash");
        db.pool().crash();
        db.pool().with_disk(|d| d.clear_fault_plan());
        recover(&mut db, tid, &log, &[]).unwrap();
        db.check_consistency(tid).unwrap();
        let cat = audit_catalog(&db, tid).unwrap();
        assert!(cat.is_clean(), "crash at {n}: {:?}", cat.findings);
        let eq = audit_equivalence(&reference, &db, tid).unwrap();
        assert!(eq.is_clean(), "crash at {n} diverged: {eq}");
        crash_points += 1;
        n += stride;
    }
    assert!(
        crash_points >= 50,
        "campaign too small to mean anything: {crash_points} points"
    );
}

/// The torn-write sweep needs *dense* pages: a fanout-16 node keeps all
/// its bytes in the first page half, and the simulator's tears persist
/// exactly that half — every tear would be silent and harmless. Default
/// (page-filling) nodes put live bytes in the torn tail. The victims are
/// the middle band of the key space, so whole dense leaves empty out and
/// get freed — giving the recycler real pages to zero.
fn deleted_dense(n_rows: usize) -> (Database, usize) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(96 << 10));
    let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    let tid = w.tid;
    let d: Vec<u64> = {
        let mut a: Vec<u64> = TableSpec::tiny(n_rows)
            .generate_rows()
            .iter()
            .map(|r| r.attr(0))
            .collect();
        a.sort_unstable();
        a[n_rows / 6..n_rows - n_rows / 6].to_vec()
    };
    strategy::vertical_auto(&mut db, tid, 0, &d, ReorgPolicy::FreeAtEmpty, 1).unwrap();
    db.pool().flush_all().unwrap();
    (db, tid)
}

#[test]
fn maintenance_torn_write_campaign_recovers_every_surfaced_tear() {
    let (mut probe, tid) = deleted_dense(900);
    let c0 = probe.pool().with_disk(|d| d.accesses());
    run_maintenance_cycle(&mut probe, tid, &LogManager::new(), &mut maintainer()).unwrap();
    let total = probe.pool().with_disk(|d| d.accesses()) - c0;
    let (reference, _) = deleted_dense(900);

    let mut torn_points = 0usize;
    let mut healed_free = 0usize;
    for n in 1..=total {
        let (mut db, tid) = deleted_dense(900);
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|d| d.accesses());
        db.pool().with_disk(|d| {
            d.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_at_access(c0 + n).torn()))
        });
        let run = run_maintenance_cycle(&mut db, tid, &log, &mut maintainer());
        let fired = db.pool().with_disk(|d| d.fault_plan_fired());
        if run.is_ok() && fired == 0 {
            continue; // access n was a read: nothing torn
        }
        // Surface the damage the way a restart would: drop the cache,
        // scrub the disk for checksum failures, run media recovery.
        let completed = run.is_ok();
        db.pool().crash();
        db.pool().with_disk(|d| d.clear_fault_plan());
        let corrupt = db.pool().with_disk(|d| d.corrupt_pages());
        if completed && corrupt.is_empty() {
            // The cycle rewrote or reclaimed the torn page after tearing
            // it; the tear left no trace.
            continue;
        }
        let (_, media) = recover_media_report(&mut db, tid, &log, &[], &corrupt).unwrap();
        if completed {
            // Every bracket closed, so damage is page-precise: one torn
            // page condemns at most the one structure that owns it.
            assert!(
                media.rebuilt_trees.len() + media.rebuilt_hashes.len() <= 1,
                "torn point {n} rebuilt more than its one damaged structure: {media:?}"
            );
        }
        healed_free += media.healed_free;
        db.check_consistency(tid).unwrap();
        let cat = audit_catalog(&db, tid).unwrap();
        assert!(cat.is_clean(), "tear at {n}: {:?}", cat.findings);
        let eq = audit_equivalence(&reference, &db, tid).unwrap();
        assert!(eq.is_clean(), "tear at {n} diverged: {eq}");
        torn_points += 1;
    }
    assert!(
        torn_points >= 5,
        "sweep surfaced too few tears to mean anything: {torn_points}"
    );
    // The recycler's zero-writes are the one maintenance write that needs
    // no rebuild when torn: the page was already free.
    assert!(
        healed_free > 0,
        "no torn recycle-write was healed as a free page"
    );
}

#[test]
fn open_maintenance_bracket_rebuilds_the_structure_on_recovery() {
    // A daemon that died mid-pack leaves MaintainBegin with no End. The
    // index's pages may hold a half-applied unlogged rewrite, so recovery
    // must rebuild it from the heap even though no page is visibly torn.
    let (mut db, tid) = deleted(600);
    let log = LogManager::new();
    log.append(&LogRecord::MaintainBegin {
        structure: StructureId::index_of(tid, 1),
    });
    db.pool().crash();
    let (n, media) = recover_media_report(&mut db, tid, &log, &[], &[]).unwrap();
    assert_eq!(n, 0);
    assert_eq!(media.rebuilt_trees, vec![1], "{media:?}");
    db.check_consistency(tid).unwrap();
    let cat = audit_catalog(&db, tid).unwrap();
    assert!(cat.is_clean(), "{:?}", cat.findings);
    let (reference, _) = deleted(600);
    let eq = audit_equivalence(&reference, &db, tid).unwrap();
    assert!(eq.is_clean(), "rebuild from open bracket diverged: {eq}");

    // Recovery closed the bracket: a second restart rebuilds nothing.
    let (_, media2) = recover_media_report(&mut db, tid, &log, &[], &[]).unwrap();
    assert!(media2.rebuilt_trees.is_empty(), "{media2:?}");
}
