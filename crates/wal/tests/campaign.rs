//! The crash-at-every-I/O campaign and the parallel recoverable driver.
//!
//! For a seeded workload, a crash is injected at each successive disk
//! access; after `recover`, the state must match the fault-free run —
//! for the serial driver and the parallel fan-out driver alike.

use bd_core::{audit_equivalence, Database, DatabaseConfig, IndexDef};
use bd_wal::{
    crash_at_every_io, recover, run_bulk_delete, run_bulk_delete_parallel, CrashInjector,
    CrashSite, LogManager, WalError,
};
use bd_workload::TableSpec;

fn build(n_rows: usize) -> (Database, usize, Vec<u64>) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    (db, w.tid, w.a_values)
}

fn victims(a_values: &[u64]) -> Vec<u64> {
    a_values.iter().copied().step_by(3).collect()
}

#[test]
fn parallel_driver_matches_serial_state() {
    let (mut db_serial, tid, a_values) = build(1500);
    let (mut db_parallel, _, _) = build(1500);
    let d = victims(&a_values);

    let log_s = LogManager::new();
    let n_s = run_bulk_delete(&mut db_serial, tid, 0, &d, &log_s, CrashInjector::none()).unwrap();
    let log_p = LogManager::new();
    let n_p = run_bulk_delete_parallel(
        &mut db_parallel,
        tid,
        0,
        &d,
        &log_p,
        CrashInjector::none(),
        3,
    )
    .unwrap();

    assert_eq!(n_s, n_p);
    db_parallel.check_consistency(tid).unwrap();
    let eq = audit_equivalence(&db_serial, &db_parallel, tid).unwrap();
    assert!(eq.is_clean(), "parallel driver diverged: {eq}");
    // Both arms logged their completion; the log replays cleanly.
    assert!(log_p.records().len() >= log_s.records().len() - 2);
}

#[test]
fn parallel_arm_crash_sites_recover() {
    // Sites inside the fan-out arms: mid-structure of each non-unique
    // index phase (phases 2 and 3 — probe and table are the serial
    // prefix). The site travels out of the worker thread as
    // `SimulatedCrash` plus the shared site slot.
    for site in [CrashSite::MidStructure(2), CrashSite::MidStructure(3)] {
        let (mut reference, tid, a_values) = build(1200);
        let d = victims(&a_values);
        let log_ref = LogManager::new();
        run_bulk_delete(&mut reference, tid, 0, &d, &log_ref, CrashInjector::none()).unwrap();

        let (mut db, _, _) = build(1200);
        let log = LogManager::new();
        let err = run_bulk_delete_parallel(&mut db, tid, 0, &d, &log, CrashInjector::at(site), 3)
            .unwrap_err();
        assert!(
            matches!(err, WalError::Crashed(s) if s == site),
            "site {site:?} must surface, got {err}"
        );
        db.pool().crash();
        let n = recover(&mut db, tid, &log, &[]).unwrap();
        assert_eq!(n, d.len());
        db.check_consistency(tid).unwrap();
        let eq = audit_equivalence(&reference, &db, tid).unwrap();
        assert!(eq.is_clean(), "recovery after {site:?} diverged: {eq}");
    }
}

#[test]
fn recover_is_idempotent_after_parallel_crash() {
    let (mut db, tid, a_values) = build(1000);
    let d = victims(&a_values);
    let log = LogManager::new();
    let err = run_bulk_delete_parallel(
        &mut db,
        tid,
        0,
        &d,
        &log,
        CrashInjector::at(CrashSite::MidStructure(2)),
        2,
    )
    .unwrap_err();
    assert!(matches!(err, WalError::Crashed(_)));
    db.pool().crash();
    let n = recover(&mut db, tid, &log, &[]).unwrap();
    assert_eq!(n, d.len());
    // A second restart finds a committed log: recovery is a no-op, and
    // the state is unchanged.
    let (mut reference, _, _) = build(1000);
    let log_ref = LogManager::new();
    run_bulk_delete(&mut reference, tid, 0, &d, &log_ref, CrashInjector::none()).unwrap();
    db.pool().crash();
    assert_eq!(recover(&mut db, tid, &log, &[]).unwrap(), 0);
    db.check_consistency(tid).unwrap();
    let eq = audit_equivalence(&reference, &db, tid).unwrap();
    assert!(eq.is_clean(), "second recovery changed the state: {eq}");
}

// The campaigns deliberately use a pool far smaller than the working set
// (24 frames for a ~1500-row table with three secondary indices): with a
// big pool every read is a cache hit and the run issues only a handful of
// chained flush writes, leaving almost no crash points to sweep.
fn fresh(n_rows: usize) -> (Database, usize) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(96 << 10));
    let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    (db, w.tid)
}

#[test]
fn serial_campaign_recovers_at_every_disk_access() {
    let a_values = build(1500).2;
    let d = victims(&a_values);
    let report = crash_at_every_io(|| fresh(1500), 0, &d, 1, None).unwrap();
    assert!(
        report.crash_points > 50,
        "campaign too small to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, d.len());
}

#[test]
fn parallel_campaign_recovers_at_every_disk_access() {
    let a_values = build(1500).2;
    let d = victims(&a_values);
    let report = crash_at_every_io(|| fresh(1500), 0, &d, 3, None).unwrap();
    assert!(
        report.crash_points > 50,
        "campaign too small to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, d.len());
}
