//! The crash-at-every-I/O campaign and the parallel recoverable driver.
//!
//! For a seeded workload, a crash is injected at each successive disk
//! access; after `recover`, the state must match the fault-free run —
//! for the serial driver and the parallel fan-out driver alike.

use bd_core::{audit_equivalence, Database, DatabaseConfig, IndexDef};
use bd_storage::FaultPlan;
use bd_wal::{
    crash_at_every_io, crash_at_every_io_from, recover, run_bulk_delete, run_bulk_delete_parallel,
    torn_write_at_every_io, CrashInjector, CrashSite, LogManager, LogRecord, StructureId, WalError,
};
use bd_workload::TableSpec;

// Phases for this layout: 0 = probe index, 1 = table (the serial prefix,
// attr 0's index being unique), 2–3 = secondary B-trees on attrs 1 and 2,
// 4 = hash index on attr 3. Phases 2–4 fan out under the parallel driver.
fn build(n_rows: usize) -> (Database, usize, Vec<u64>) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    db.create_hash_index(w.tid, 3).unwrap();
    (db, w.tid, w.a_values)
}

fn victims(a_values: &[u64]) -> Vec<u64> {
    a_values.iter().copied().step_by(3).collect()
}

#[test]
fn parallel_driver_matches_serial_state() {
    let (mut db_serial, tid, a_values) = build(1500);
    let (mut db_parallel, _, _) = build(1500);
    let d = victims(&a_values);

    let log_s = LogManager::new();
    let n_s = run_bulk_delete(&mut db_serial, tid, 0, &d, &log_s, CrashInjector::none()).unwrap();
    let log_p = LogManager::new();
    let n_p = run_bulk_delete_parallel(
        &mut db_parallel,
        tid,
        0,
        &d,
        &log_p,
        CrashInjector::none(),
        3,
    )
    .unwrap();

    assert_eq!(n_s, n_p);
    db_parallel.check_consistency(tid).unwrap();
    let eq = audit_equivalence(&db_serial, &db_parallel, tid).unwrap();
    assert!(eq.is_clean(), "parallel driver diverged: {eq}");
    // Both arms logged their completion; the log replays cleanly. The
    // serial driver writes two more checkpoints than the parallel one (one
    // per fan phase vs one group checkpoint), and each checkpoint is two
    // records (tree metadata + catalog snapshot), hence the margin of 4.
    assert!(log_p.records().unwrap().len() >= log_s.records().unwrap().len() - 4);
}

#[test]
fn parallel_arm_crash_sites_recover() {
    // Sites inside the fan-out arms: mid-structure of each non-unique
    // index phase (phases 2–4 — probe and table are the serial prefix;
    // phase 4 is the hash arm). The site travels out of the worker thread
    // as `SimulatedCrash` plus the shared site slot.
    for site in [
        CrashSite::MidStructure(2),
        CrashSite::MidStructure(3),
        CrashSite::MidStructure(4),
    ] {
        let (mut reference, tid, a_values) = build(1200);
        let d = victims(&a_values);
        let log_ref = LogManager::new();
        run_bulk_delete(&mut reference, tid, 0, &d, &log_ref, CrashInjector::none()).unwrap();

        let (mut db, _, _) = build(1200);
        let log = LogManager::new();
        let err = run_bulk_delete_parallel(&mut db, tid, 0, &d, &log, CrashInjector::at(site), 3)
            .unwrap_err();
        assert!(
            matches!(err, WalError::Crashed(s) if s == site),
            "site {site:?} must surface, got {err}"
        );
        db.pool().crash();
        let n = recover(&mut db, tid, &log, &[]).unwrap();
        assert_eq!(n, d.len());
        db.check_consistency(tid).unwrap();
        let eq = audit_equivalence(&reference, &db, tid).unwrap();
        assert!(eq.is_clean(), "recovery after {site:?} diverged: {eq}");
    }
}

#[test]
fn recover_is_idempotent_after_parallel_crash() {
    let (mut db, tid, a_values) = build(1000);
    let d = victims(&a_values);
    let log = LogManager::new();
    let err = run_bulk_delete_parallel(
        &mut db,
        tid,
        0,
        &d,
        &log,
        CrashInjector::at(CrashSite::MidStructure(2)),
        2,
    )
    .unwrap_err();
    assert!(matches!(err, WalError::Crashed(_)));
    db.pool().crash();
    let n = recover(&mut db, tid, &log, &[]).unwrap();
    assert_eq!(n, d.len());
    // A second restart finds a committed log: recovery is a no-op, and
    // the state is unchanged.
    let (mut reference, _, _) = build(1000);
    let log_ref = LogManager::new();
    run_bulk_delete(&mut reference, tid, 0, &d, &log_ref, CrashInjector::none()).unwrap();
    db.pool().crash();
    assert_eq!(recover(&mut db, tid, &log, &[]).unwrap(), 0);
    db.check_consistency(tid).unwrap();
    let eq = audit_equivalence(&reference, &db, tid).unwrap();
    assert!(eq.is_clean(), "second recovery changed the state: {eq}");
}

#[test]
fn crash_while_paused_recovers_to_the_reference_state() {
    // A paused delete sits at a checkpoint with zero pinned frames — the
    // pause contract — so the pool can crash underneath it (`crash()`
    // panics on any pin, making the contract an assertion, not a hope).
    // Recovery from the log then completes the statement exactly as the
    // crash-at-every-IO sweep does from any other point.
    let (mut reference, tid, a_values) = build(1200);
    let d = victims(&a_values);
    let log_ref = LogManager::new();
    let counter = bd_storage::Pacer::new();
    {
        let _g = counter.enter();
        run_bulk_delete(&mut reference, tid, 0, &d, &log_ref, CrashInjector::none()).unwrap();
    }
    let total = counter.checks();
    assert!(total > 30, "run crossed only {total} checkpoints");

    for trip in [total / 8, total / 2, total - total / 8] {
        let (mut db, _, _) = build(1200);
        let pool = db.pool().clone();
        let log = LogManager::new();
        let pacer = bd_storage::Pacer::new();
        pacer.pause_after(trip);
        std::thread::scope(|s| {
            let worker = s.spawn(|| {
                let _g = pacer.enter();
                run_bulk_delete(&mut db, tid, 0, &d, &log, CrashInjector::none())
            });
            assert!(
                pacer.wait_parked(1, std::time::Duration::from_secs(10)),
                "delete never parked at trip {trip}"
            );
            // Zero pins while parked, or this panics.
            pool.crash();
            pacer.cancel();
            assert!(
                worker.join().unwrap().is_err(),
                "cancelled-after-crash run must not report success"
            );
        });
        // Discard anything the unwinding error path touched post-crash,
        // then restart: redo from the log.
        pool.crash();
        recover(&mut db, tid, &log, &[]).unwrap();
        db.check_consistency(tid).unwrap();
        let eq = audit_equivalence(&reference, &db, tid).unwrap();
        assert!(
            eq.is_clean(),
            "recovery after paused crash (trip {trip}) diverged: {eq}"
        );
    }
}

// The campaigns deliberately use a pool far smaller than the working set
// (24 frames for a ~1500-row table with three secondary indices): with a
// big pool every read is a cache hit and the run issues only a handful of
// chained flush writes, leaving almost no crash points to sweep.
fn fresh(n_rows: usize) -> (Database, usize) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(96 << 10));
    let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    db.create_hash_index(w.tid, 3).unwrap();
    (db, w.tid)
}

#[test]
fn serial_campaign_recovers_at_every_disk_access() {
    let a_values = build(1500).2;
    let d = victims(&a_values);
    let report = crash_at_every_io(|| fresh(1500), 0, &d, 1, None).unwrap();
    assert!(
        report.crash_points > 50,
        "campaign too small to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, d.len());
}

#[test]
fn parallel_campaign_recovers_at_every_disk_access() {
    let a_values = build(1500).2;
    let d = victims(&a_values);
    let report = crash_at_every_io(|| fresh(1500), 0, &d, 3, None).unwrap();
    assert!(
        report.crash_points > 50,
        "campaign too small to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, d.len());
}

#[test]
fn serial_torn_write_campaign_recovers_every_surfaced_tear() {
    let a_values = build(900).2;
    let d = victims(&a_values);
    let report = torn_write_at_every_io(|| fresh(900), 0, &d, 1, 0, None).unwrap();
    assert!(
        report.torn_points >= 5,
        "sweep surfaced too few tears to mean anything: {report:?}"
    );
    assert!(
        report.accesses_swept >= 20,
        "sweep tore too few writes: {report:?}"
    );
    assert_eq!(report.deleted, d.len());
    // Structure-precision: one torn page condemns at most the one structure
    // that owns it. The pre-catalog classifier attributed every
    // non-heap/non-hash tear to "the B-trees" and rebuilt all four trees;
    // any torn index page would push this to 4.
    assert!(
        report.max_rebuilt_per_point <= 1,
        "a torn point rebuilt more than its one damaged structure: {report:?}"
    );
    assert!(
        report.structures_rebuilt <= report.torn_points,
        "rebuilds must be bounded by one per torn point: {report:?}"
    );
}

#[test]
fn parallel_torn_write_campaign_recovers_every_surfaced_tear() {
    let a_values = build(900).2;
    let d = victims(&a_values);
    let report = torn_write_at_every_io(|| fresh(900), 0, &d, 3, 0, None).unwrap();
    assert!(
        report.torn_points >= 5,
        "sweep surfaced too few tears to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, d.len());
    assert!(
        report.max_rebuilt_per_point <= 1,
        "a torn point rebuilt more than its one damaged structure: {report:?}"
    );
}

#[test]
fn torn_free_page_is_healed_without_any_rebuild() {
    use bd_storage::FaultSpec;
    use bd_wal::recover_media_report;

    // Delete *every* row so whole leaves empty out and are returned to the
    // catalog's free set.
    let (mut db, tid, a_values) = build(900);
    let log = LogManager::new();
    run_bulk_delete(&mut db, tid, 0, &a_values, &log, CrashInjector::none()).unwrap();
    db.pool().flush_all().unwrap();

    let free = db.pool().with_disk(|d| d.catalog().free_pages());
    assert!(
        !free.is_empty(),
        "a full bulk delete must free emptied leaf pages"
    );
    let pid = free[free.len() / 2];

    // Tear the free page: arm a torn fault on the very next write, then
    // rewrite the page with a changed back half. The persisted image keeps
    // the old back half while the checksum records the intended one.
    db.pool().with_disk(|d| {
        let mut buf = [0u8; bd_storage::PAGE_SIZE];
        d.read(pid, &mut buf).unwrap();
        for b in &mut buf[bd_storage::PAGE_SIZE / 2..] {
            *b ^= 0xA5;
        }
        let c = d.accesses();
        d.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_at_access(c + 1).torn()));
        d.write(pid, &buf).unwrap();
        d.clear_fault_plan();
    });
    let corrupt = db.pool().with_disk(|d| d.corrupt_pages());
    assert_eq!(corrupt, vec![pid], "the tear must be detectable");

    db.pool().crash();
    let (_, media) = recover_media_report(&mut db, tid, &log, &[], &corrupt).unwrap();
    // Regression: the pre-catalog classifier could not attribute a free
    // page to any structure and rebuilt every B-tree for it. The catalog
    // knows the page is free — heal it and rebuild nothing.
    assert_eq!(
        media.structures_rebuilt(),
        0,
        "a torn free page must not trigger any rebuild: {media:?}"
    );
    assert_eq!(media.healed_free, 1, "{media:?}");
    assert!(
        db.pool().with_disk(|d| d.corrupt_pages()).is_empty(),
        "the torn page must be healed"
    );
    db.check_consistency(tid).unwrap();
}

#[test]
fn torn_index_page_rebuilds_only_that_tree() {
    use bd_storage::FaultSpec;
    use bd_wal::recover_media_report;

    let (mut db, tid, a_values) = build(900);
    let d = victims(&a_values);
    let log = LogManager::new();
    run_bulk_delete(&mut db, tid, 0, &d, &log, CrashInjector::none()).unwrap();
    db.pool().flush_all().unwrap();

    // Tear a page of the B-tree on attribute 1 (a live root/leaf).
    let pid = db
        .pool()
        .with_disk(|d| d.catalog().pages_of(StructureId::Index(1))[0]);
    db.pool().with_disk(|d| {
        let mut buf = [0u8; bd_storage::PAGE_SIZE];
        d.read(pid, &mut buf).unwrap();
        for b in &mut buf[bd_storage::PAGE_SIZE / 2..] {
            *b ^= 0xA5;
        }
        let c = d.accesses();
        d.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_at_access(c + 1).torn()));
        d.write(pid, &buf).unwrap();
        d.clear_fault_plan();
    });
    let corrupt = db.pool().with_disk(|d| d.corrupt_pages());
    assert_eq!(corrupt, vec![pid]);

    db.pool().crash();
    let (_, media) = recover_media_report(&mut db, tid, &log, &[], &corrupt).unwrap();
    // Single-tree precision: only the owning index rebuilds. The old
    // classifier would have rebuilt all four B-trees here.
    assert_eq!(media.rebuilt_trees, vec![1], "{media:?}");
    assert!(media.rebuilt_hashes.is_empty(), "{media:?}");
    assert_eq!(media.structures_rebuilt(), 1, "{media:?}");
    db.check_consistency(tid).unwrap();
    bd_core::audit_catalog(&db, tid)
        .unwrap()
        .into_result()
        .unwrap();
}

#[test]
fn replicas_ride_out_torn_writes() {
    use bd_storage::FaultSpec;

    // Reference: fault-free final state.
    let (mut reference, tid, a_values) = build(900);
    let d = victims(&a_values);
    let log_ref = LogManager::new();
    run_bulk_delete(&mut reference, tid, 0, &d, &log_ref, CrashInjector::none()).unwrap();

    // Find a sweep position whose tear survives to the end of the run (the
    // clean frame stays resident, so the damage is latent until a restart
    // drops the cache and something reads the torn disk image).
    let mut n = 0u64;
    let latent = loop {
        n += 1;
        let (mut db, _) = fresh(900);
        db.pool().flush_all().unwrap();
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|disk| disk.accesses());
        db.pool().with_disk(|disk| {
            disk.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_at_access(c0 + n).torn()))
        });
        let run = run_bulk_delete(&mut db, tid, 0, &d, &log, CrashInjector::none());
        let used = db.pool().with_disk(|disk| disk.accesses()) - c0;
        match run {
            Ok(_) => {
                assert!(n < used, "no latent tear position in the whole run");
                if db.pool().with_disk(|disk| disk.fault_plan_fired()) == 1
                    && !db.pool().with_disk(|disk| disk.corrupt_pages()).is_empty()
                {
                    break n;
                }
            }
            Err(e) => panic!("unexpected error at position {n}: {e}"),
        }
    };

    // The same position with per-page replicas: after the restart every
    // reader that hits the torn primary is repaired from the second copy
    // by the retry policy, so full consistency checks pass and the scrub
    // comes back clean — no media recovery needed.
    let (mut db, _) = fresh(900);
    db.pool().flush_all().unwrap();
    db.pool().with_disk(|disk| disk.enable_replicas());
    let log = LogManager::new();
    let c0 = db.pool().with_disk(|disk| disk.accesses());
    db.pool().with_disk(|disk| {
        disk.set_fault_plan(FaultPlan::new().inject(FaultSpec::write_at_access(c0 + latent).torn()))
    });
    let deleted = run_bulk_delete(&mut db, tid, 0, &d, &log, CrashInjector::none()).unwrap();
    assert_eq!(deleted, d.len());
    assert_eq!(db.pool().with_disk(|disk| disk.fault_plan_fired()), 1);
    db.pool().crash();
    db.pool().with_disk(|disk| disk.clear_fault_plan());
    let retries_before = db.pool().with_disk(|disk| disk.stats().retries);
    db.check_consistency(tid).unwrap();
    let eq = audit_equivalence(&reference, &db, tid).unwrap();
    assert!(eq.is_clean(), "replica ride-out diverged: {eq}");
    assert!(
        db.pool().with_disk(|disk| disk.stats().retries) > retries_before,
        "the replica fallback must be charged as a retry"
    );
    assert_eq!(
        db.pool().with_disk(|disk| disk.corrupt_pages()),
        Vec::<bd_storage::PageId>::new(),
        "the repaired primary must pass the scrub"
    );
}

#[test]
fn arm_crash_with_empty_site_slot_maps_to_in_io() {
    // A disk-level crash point (`FaultPlan::crash_at_access`) firing
    // inside a fan-out arm's I/O surfaces as `SimulatedCrash` with the
    // shared site slot never set; by contract the driver maps that to
    // `CrashSite::InIo`. Detection: the serial prefix logged its table
    // completion but at least one fan arm never logged its own, so the
    // crash fired between fan-out start and fan-out completion — i.e.
    // on a worker thread.
    let (mut reference, tid, a_values) = build(900);
    let d = victims(&a_values);
    let log_ref = LogManager::new();
    run_bulk_delete_parallel(
        &mut reference,
        tid,
        0,
        &d,
        &log_ref,
        CrashInjector::none(),
        3,
    )
    .unwrap();

    let mut n = 0u64;
    loop {
        n += 1;
        let (mut db, _, _) = build(900);
        db.pool().flush_all().unwrap();
        let log = LogManager::new();
        let c0 = db.pool().with_disk(|disk| disk.accesses());
        db.pool()
            .with_disk(|disk| disk.set_fault_plan(FaultPlan::new().crash_at_access(c0 + n)));
        match run_bulk_delete_parallel(&mut db, tid, 0, &d, &log, CrashInjector::none(), 3) {
            Ok(_) => panic!("run completed before any crash landed inside a fan-out arm"),
            Err(WalError::Crashed(site)) => {
                let recs = log.records().unwrap();
                let serial_done = recs.iter().any(|r| {
                    matches!(
                        r,
                        LogRecord::StructureDone {
                            structure: StructureId::Table
                        }
                    )
                });
                let fan_done = recs
                    .iter()
                    .filter(|r| {
                        matches!(
                            r,
                            LogRecord::StructureDone {
                                structure: StructureId::Index(_) | StructureId::Hash(_)
                            }
                        )
                    })
                    .count();
                if !(serial_done && fan_done < 3) {
                    continue; // crash landed outside the fan-out region
                }
                assert_eq!(site, CrashSite::InIo, "access {n}");
                db.pool().crash();
                db.pool().with_disk(|disk| disk.clear_fault_plan());
                recover(&mut db, tid, &log, &[]).unwrap();
                db.check_consistency(tid).unwrap();
                let eq = audit_equivalence(&reference, &db, tid).unwrap();
                assert!(eq.is_clean(), "recovery after InIo diverged: {eq}");
                return;
            }
            Err(e) => panic!("unexpected error at access {n}: {e}"),
        }
    }
}

#[test]
fn late_region_campaign_resumes_deep_passes_serial() {
    // > PROGRESS_CHUNK victims per structure: every pass logs several
    // Progress records, and the hash pass runs last — so sweeping only
    // the tail of the access stream exercises resume-from-progress deep
    // inside the late passes without paying for thousands of early crash
    // points.
    let a_values = build(5000).2;
    let d: Vec<u64> = a_values
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % 10 != 0)
        .map(|(_, v)| v)
        .collect();
    assert!(d.len() > 2 * 2048, "need several progress chunks");
    // A zero-limit sweep measures the fault-free access count.
    let probe = crash_at_every_io_from(|| fresh(5000), 0, &d, 1, 0, Some(0)).unwrap();
    let start = probe.fault_free_accesses.saturating_sub(40);
    let report = crash_at_every_io_from(|| fresh(5000), 0, &d, 1, start, None).unwrap();
    assert!(
        report.crash_points >= 10,
        "tail sweep too small: {report:?}"
    );
    assert_eq!(report.deleted, d.len());
}

#[test]
fn late_region_campaign_resumes_deep_passes_parallel() {
    let a_values = build(5000).2;
    let d: Vec<u64> = a_values
        .iter()
        .copied()
        .enumerate()
        .filter(|(i, _)| i % 10 != 0)
        .map(|(_, v)| v)
        .collect();
    let probe = crash_at_every_io_from(|| fresh(5000), 0, &d, 3, 0, Some(0)).unwrap();
    // Parallel access counts vary a little run to run (interleaving
    // changes eviction order), so leave more headroom than the serial
    // test and accept fewer points.
    let start = probe.fault_free_accesses.saturating_sub(60);
    let report = crash_at_every_io_from(|| fresh(5000), 0, &d, 3, start, None).unwrap();
    assert!(report.crash_points >= 5, "tail sweep too small: {report:?}");
    assert_eq!(report.deleted, d.len());
}
