//! Property test: every log record survives an encode/decode roundtrip.

use proptest::prelude::*;

use bd_storage::Rid;
use bd_wal::{LogRecord, MaterializedRow, StructureId, TreeMeta};

fn structure_strategy() -> impl Strategy<Value = StructureId> {
    prop_oneof![
        Just(StructureId::Probe),
        Just(StructureId::Table),
        any::<u16>().prop_map(StructureId::Index),
        any::<u16>().prop_map(StructureId::Hash),
        any::<u16>().prop_map(StructureId::Lsm),
    ]
}

fn record_strategy() -> impl Strategy<Value = LogRecord> {
    let begin = (any::<u16>(), prop::collection::vec(any::<u64>(), 0..50))
        .prop_map(|(probe_attr, keys)| LogRecord::BulkBegin { probe_attr, keys });
    let rows =
        (1usize..6, prop::collection::vec(any::<u64>(), 0..40)).prop_map(|(n_attrs, flat)| {
            let rows = flat
                .chunks(n_attrs)
                .filter(|c| c.len() == n_attrs)
                .enumerate()
                .map(|(i, attrs)| MaterializedRow {
                    rid: Rid::new(i as u32, (i % 8) as u16),
                    attrs: attrs.to_vec(),
                })
                .collect();
            LogRecord::RowsMaterialized { rows }
        });
    let ckpt =
        prop::collection::vec((any::<u16>(), any::<u32>(), 1u16..10), 0..8).prop_map(|trees| {
            LogRecord::Checkpoint {
                trees: trees
                    .into_iter()
                    .map(|(attr, root, height)| TreeMeta { attr, root, height })
                    .collect(),
            }
        });
    let done = structure_strategy().prop_map(|structure| LogRecord::StructureDone { structure });
    let progress = (structure_strategy(), any::<u32>())
        .prop_map(|(structure, done)| LogRecord::Progress { structure, done });
    prop_oneof![
        begin,
        rows,
        ckpt,
        done,
        progress,
        Just(LogRecord::BulkCommit)
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(record in record_strategy()) {
        let bytes = record.encode();
        prop_assert_eq!(LogRecord::decode(&bytes).unwrap(), record);
    }

    #[test]
    fn log_manager_replays_any_sequence(
        records in prop::collection::vec(record_strategy(), 0..30)
    ) {
        let log = bd_wal::LogManager::new();
        for r in &records {
            log.append(r);
        }
        prop_assert_eq!(log.records().unwrap(), records);
    }

    // Decoding never panics: arbitrary garbage and arbitrary truncations
    // of valid encodings both yield Ok or Err, never an abort.
    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = LogRecord::decode(&bytes);
    }

    #[test]
    fn decode_never_panics_on_truncation(record in record_strategy(), cut in 0usize..100) {
        let bytes = record.encode();
        let cut = cut.min(bytes.len());
        let _ = LogRecord::decode(&bytes[..bytes.len() - cut]);
    }
}
