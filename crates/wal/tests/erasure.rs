//! Durable erasure campaigns over a three-table cascade: crash-safe
//! resumption, cooperative cancellation, log redaction, and the
//! crash/torn-write sweeps that prove the proof-of-deletion holds after
//! recovery at every I/O of the whole campaign.

use bd_core::{
    audit_catalog, audit_equivalence, collect_sensitive, plan_cascade, verify_erasure, Database,
    DatabaseConfig, ForeignKey, IndexDef, Schema, TableId, Tuple,
};
use bd_storage::{FaultPlan, Pacer};
use bd_wal::{
    erasure_crash_at_every_io, erasure_torn_write_at_every_io, recover, recover_campaign,
    run_erasure_campaign, LogManager, LogRecord, WalError,
};

// High-entropy values for every attribute of every victim row: the proof
// byte-scans whole page images, so low-entropy values (row numbers, small
// constants) would collide with page metadata and free-text bytes.
fn tag(ns: u64, i: u64) -> u64 {
    0xE57A_0000_0000_0000 | (ns << 40) | (i * 0x0101 + 1)
}

const N_ROOT: u64 = 48;

/// Victim rows the reference campaign deletes: half the roots, each with
/// 2 B children and 4 C grandchildren.
const DELETED: usize = (N_ROOT as usize / 2) * (1 + 2 + 4);

/// A ← B ← C cascade: deleting a root in A takes its two B children and
/// their two C children each. Every table also holds orphan-free survivor
/// rows (roots not in the victim set keep their whole subtree), so each
/// step deletes only part of its table. B carries a hash index so the
/// sweep covers the hash scrub surface too.
fn build() -> (Database, TableId) {
    // A pool far smaller than the working set, like the bulk-delete
    // sweeps: with everything cached the campaign would issue almost no
    // disk I/O and leave nothing to sweep.
    let mut db = Database::new(DatabaseConfig::with_total_memory(32 << 10));
    let mut tids = Vec::new();
    for name in ["A", "B", "C"] {
        let tid = db.create_table(name, Schema::new(3, 64));
        db.create_index(tid, IndexDef::secondary(0).unique())
            .unwrap();
        db.create_index(tid, IndexDef::secondary(1)).unwrap();
        tids.push(tid);
    }
    let (a, b, c) = (tids[0], tids[1], tids[2]);
    db.create_hash_index(b, 2).unwrap();
    db.add_foreign_key(ForeignKey::cascade("fk_ab", a, 0, b, 1));
    db.add_foreign_key(ForeignKey::cascade("fk_bc", b, 0, c, 1));
    for i in 0..N_ROOT {
        db.insert(a, &Tuple::new(vec![tag(1, i), tag(6, i), tag(7, i)]))
            .unwrap();
        for j in 0..2 {
            let bk = tag(2, i * 4 + j);
            db.insert(b, &Tuple::new(vec![bk, tag(1, i), tag(8, i * 4 + j)]))
                .unwrap();
            for k in 0..2 {
                db.insert(
                    c,
                    &Tuple::new(vec![
                        tag(3, (i * 4 + j) * 4 + k),
                        bk,
                        tag(9, (i * 4 + j) * 4 + k),
                    ]),
                )
                .unwrap();
            }
        }
    }
    (db, a)
}

/// Every second root: half of A cascades away, the other half survives
/// with its whole subtree.
fn victims() -> Vec<u64> {
    (0..N_ROOT).step_by(2).map(|i| tag(1, i)).collect()
}

fn rows(db: &Database, tid: TableId) -> usize {
    db.table(tid).unwrap().heap.dump().unwrap().len()
}

#[test]
fn campaign_erases_the_cascade_and_proves_it() {
    let (mut db, root) = build();
    db.pool().flush_all().unwrap();
    let d = victims();
    let plan = plan_cascade(&db, root, 0, &d).unwrap();
    assert_eq!(plan.steps.len(), 3, "three-table cascade");
    let sensitive = collect_sensitive(&db, &plan).unwrap();

    let log = LogManager::new();
    let out = run_erasure_campaign(&mut db, &plan, &log, 1, &Pacer::new()).unwrap();
    assert_eq!(out.steps_run, 3);
    assert_eq!(out.deleted, DELETED);
    assert_eq!(rows(&db, root), N_ROOT as usize / 2);
    assert!(out.redacted > 0, "key-bearing records must be redacted");
    assert!(out.report.is_clean(), "{}", out.report.render());

    // The proof holds externally too, against the pre-campaign sensitive
    // list (the campaign's own copy of it was destroyed with the log's
    // key-bearing records).
    let raw = log.raw_bytes();
    let proof = verify_erasure(&db, &sensitive, &[("wal", &raw)]).unwrap();
    assert!(proof.is_clean(), "{}", proof.render());
    let closing = log.records().unwrap();
    assert!(closing
        .iter()
        .any(|r| matches!(r, LogRecord::CampaignCommit { id } if *id == out.id)));
    for t in 0..3 {
        audit_catalog(&db, t).unwrap().into_result().unwrap();
        db.check_consistency(t).unwrap();
    }
}

#[test]
fn redacted_log_is_inert_for_every_recovery_path() {
    let (mut db, root) = build();
    db.pool().flush_all().unwrap();
    let d = victims();
    let plan = plan_cascade(&db, root, 0, &d).unwrap();
    let log = LogManager::new();
    run_erasure_campaign(&mut db, &plan, &log, 1, &Pacer::new()).unwrap();

    // Every record still decodes (redaction preserves offsets and
    // lengths), but no victim key survives in the raw image…
    let records = log.records().unwrap();
    assert!(records
        .iter()
        .any(|r| matches!(r, LogRecord::Redacted { .. })));
    let raw = log.raw_bytes();
    for key in &d {
        let img = key.to_le_bytes();
        assert!(
            !raw.windows(8).any(|w| w == img),
            "victim key {key:#x} survives in the redacted log"
        );
    }
    // …so both recovery paths find nothing to do: the campaign's begin
    // record is gone (redaction doubles as the idempotence guard), and so
    // is every statement-level BulkBegin.
    assert!(recover_campaign(&mut db, &log, 1, &[]).unwrap().is_none());
    let before = rows(&db, root);
    assert_eq!(recover(&mut db, root, &log, &[]).unwrap(), 0);
    assert_eq!(rows(&db, root), before);
}

#[test]
fn cancel_before_any_step_leaves_the_database_untouched() {
    let (mut db, root) = build();
    db.pool().flush_all().unwrap();
    let plan = plan_cascade(&db, root, 0, &victims()).unwrap();
    let log = LogManager::new();
    let pacer = Pacer::new();
    pacer.cancel();
    let err = run_erasure_campaign(&mut db, &plan, &log, 1, &pacer).unwrap_err();
    assert!(
        matches!(err, WalError::Db(_)),
        "cancel surfaces as an error"
    );

    let records = log.records().unwrap();
    assert!(records
        .iter()
        .any(|r| matches!(r, LogRecord::CampaignCancelled { completed: 0, .. })));
    assert_eq!(rows(&db, 0), N_ROOT as usize);
    assert_eq!(rows(&db, 1), 2 * N_ROOT as usize);
    assert_eq!(rows(&db, 2), 4 * N_ROOT as usize);
    // A cancelled campaign is closed: restart resumes nothing.
    assert!(recover_campaign(&mut db, &log, 1, &[]).unwrap().is_none());
}

#[test]
fn cancel_mid_campaign_keeps_a_consistent_recorded_prefix() {
    let (mut db, root) = build();
    db.pool().flush_all().unwrap();
    let plan = plan_cascade(&db, root, 0, &victims()).unwrap();
    let step_tables: Vec<TableId> = plan.steps.iter().map(|s| s.table).collect();
    let log = LogManager::new();
    let pacer = Pacer::new();
    // Check #1 is the between-step gate before step 0; #2 lands inside
    // step 0's body (or on the next gate). Cancelling a parked step is
    // *deferred* — the step runs to completion and the cancel is observed
    // at the next between-step gate, so the campaign never abandons a
    // step half-run.
    pacer.pause_after(2);
    std::thread::scope(|s| {
        let worker = s.spawn(|| run_erasure_campaign(&mut db, &plan, &log, 1, &pacer));
        assert!(
            pacer.wait_parked(1, std::time::Duration::from_secs(10)),
            "campaign never parked"
        );
        pacer.cancel();
        assert!(worker.join().unwrap().is_err(), "cancelled run must error");
    });

    let records = log.records().unwrap();
    let completed = records
        .iter()
        .find_map(|r| match r {
            LogRecord::CampaignCancelled { completed, .. } => Some(*completed as usize),
            _ => None,
        })
        .expect("campaign must be sealed with a cancel record");
    assert_eq!(
        completed, 1,
        "the parked step must finish before the cancel"
    );
    let sealed = records
        .iter()
        .filter(|r| matches!(r, LogRecord::CampaignStepDone { .. }))
        .count();
    assert_eq!(sealed, completed);
    // The completed prefix is durable and consistent; later steps never
    // started. Steps run children-first, so the prefix holds no dangling
    // child references.
    let (reference, _) = build();
    for (i, &t) in step_tables.iter().enumerate() {
        db.check_consistency(t).unwrap();
        audit_catalog(&db, t).unwrap().into_result().unwrap();
        if i >= completed {
            let eq = audit_equivalence(&reference, &db, t).unwrap();
            assert!(eq.is_clean(), "unstarted step's table changed: {eq}");
        }
    }
    assert!(
        rows(&db, step_tables[0]) < 4 * N_ROOT as usize,
        "the completed step must have deleted its victims"
    );
    assert!(recover_campaign(&mut db, &log, 1, &[]).unwrap().is_none());
}

#[test]
fn single_crash_point_recovers_into_the_same_campaign() {
    // Reference: fault-free.
    let (mut reference, root) = build();
    reference.pool().flush_all().unwrap();
    let d = victims();
    let plan = plan_cascade(&reference, root, 0, &d).unwrap();
    let sensitive = collect_sensitive(&reference, &plan).unwrap();
    let ref_log = LogManager::new();
    let ref_c0 = reference.pool().with_disk(|disk| disk.accesses());
    run_erasure_campaign(&mut reference, &plan, &ref_log, 1, &Pacer::new()).unwrap();
    let total = reference.pool().with_disk(|disk| disk.accesses()) - ref_c0;

    // Crash at roughly 40% of the campaign's access stream.
    let (mut db, _) = build();
    db.pool().flush_all().unwrap();
    let log = LogManager::new();
    let plan_n = plan_cascade(&db, root, 0, &d).unwrap();
    let c0 = db.pool().with_disk(|disk| disk.accesses());
    db.pool().with_disk(|disk| {
        disk.set_fault_plan(FaultPlan::new().crash_at_access(c0 + total * 2 / 5))
    });
    assert!(run_erasure_campaign(&mut db, &plan_n, &log, 1, &Pacer::new()).is_err());
    db.pool().crash();
    db.pool().with_disk(|disk| disk.clear_fault_plan());

    let out = recover_campaign(&mut db, &log, 1, &[])
        .unwrap()
        .expect("the open campaign must be found and resumed");
    assert!(out.report.is_clean(), "{}", out.report.render());
    let raw = log.raw_bytes();
    let proof = verify_erasure(&db, &sensitive, &[("wal", &raw)]).unwrap();
    assert!(proof.is_clean(), "{}", proof.render());
    for t in 0..3 {
        let eq = audit_equivalence(&reference, &db, t).unwrap();
        assert!(eq.is_clean(), "table {t} diverged: {eq}");
        audit_catalog(&db, t).unwrap().into_result().unwrap();
    }
    // Second restart: the campaign is closed (and redacted away).
    db.pool().crash();
    assert!(recover_campaign(&mut db, &log, 1, &[]).unwrap().is_none());
}

#[test]
fn serial_campaign_proof_holds_at_every_crash_point() {
    let report = erasure_crash_at_every_io(build, 0, &victims(), 1, 0, None).unwrap();
    assert!(
        report.recovered_points > 50,
        "sweep too small to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, DELETED);
    assert_eq!(report.steps, 3);
}

#[test]
fn parallel_campaign_proof_holds_at_every_crash_point() {
    let report = erasure_crash_at_every_io(build, 0, &victims(), 3, 0, None).unwrap();
    assert!(
        report.recovered_points > 50,
        "sweep too small to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, DELETED);
}

#[test]
fn serial_campaign_proof_holds_at_every_torn_write() {
    let report = erasure_torn_write_at_every_io(build, 0, &victims(), 1, 0, None).unwrap();
    assert!(
        report.recovered_points + report.silent_points >= 10,
        "sweep tore too few writes to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, DELETED);
}

#[test]
fn parallel_campaign_proof_holds_at_every_torn_write() {
    let report = erasure_torn_write_at_every_io(build, 0, &victims(), 3, 0, None).unwrap();
    assert!(
        report.recovered_points + report.silent_points >= 10,
        "sweep tore too few writes to mean anything: {report:?}"
    );
    assert_eq!(report.deleted, DELETED);
}
