//! Threaded tests of the §3.1 concurrent bulk-delete protocol.

use std::collections::HashSet;
use std::sync::Arc;

use bd_core::{Database, DatabaseConfig, IndexDef, Tuple};
use bd_txn::{PropagationMode, TxnDb};
use bd_workload::TableSpec;

fn setup(n_rows: usize) -> (Arc<TxnDb>, usize, Vec<u64>) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let spec = TableSpec::tiny(n_rows);
    let w = spec.build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    let tid = w.tid;
    let a_values = w.a_values.clone();
    (TxnDb::new(db), tid, a_values)
}

/// Fresh keys that cannot collide with generated rows (generated values are
/// multiples of 10).
fn fresh_tuple(i: u64) -> Tuple {
    Tuple::new(vec![
        1_000_001 + i * 2,
        2_000_001 + i * 2,
        3_000_001 + i * 2,
        i,
    ])
}

#[test]
fn bulk_delete_without_concurrency() {
    let (tdb, tid, a_values) = setup(2000);
    let victims: Vec<u64> = a_values.iter().copied().step_by(4).collect();
    let n = tdb
        .bulk_delete(tid, 0, &victims, PropagationMode::SideFile)
        .unwrap();
    assert_eq!(n, victims.len());
    tdb.with(|db| db.check_consistency(tid).unwrap());
    let txn = tdb.begin();
    assert!(tdb.read(txn, tid, 0, victims[0]).unwrap().is_empty());
    tdb.commit(txn);
}

fn concurrent_updates_during_bulk(mode: PropagationMode) {
    let (tdb, tid, a_values) = setup(3000);
    let victims: Vec<u64> = a_values.iter().copied().step_by(3).collect();
    let n_updaters = 4;
    let inserts_per_updater = 50u64;

    let inserted: Vec<u64> = std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            s.spawn(move || tdb.bulk_delete(tid, 0, &victims, mode).unwrap())
        };
        let updaters: Vec<_> = (0..n_updaters)
            .map(|u| {
                let tdb = tdb.clone();
                s.spawn(move || {
                    let mut keys = Vec::new();
                    for i in 0..inserts_per_updater {
                        let txn = tdb.begin();
                        let t = fresh_tuple(u * 10_000 + i);
                        tdb.insert(txn, tid, &t).unwrap();
                        keys.push(t.attr(0));
                        tdb.commit(txn);
                    }
                    keys
                })
            })
            .collect();
        let deleted = bulk.join().unwrap();
        assert_eq!(deleted, victims.len());
        updaters
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Every index agrees with the heap.
    tdb.with(|db| db.check_consistency(tid).unwrap());
    // Bulk-deleted rows are gone; updater rows are present via every index.
    let txn = tdb.begin();
    for &v in victims.iter().step_by(97) {
        assert!(tdb.read(txn, tid, 0, v).unwrap().is_empty(), "key {v}");
    }
    assert_eq!(inserted.len(), (n_updaters * inserts_per_updater) as usize);
    for &k in inserted.iter().step_by(13) {
        let rows = tdb.read(txn, tid, 0, k).unwrap();
        assert_eq!(rows.len(), 1, "inserted key {k} lost");
        // Also reachable through the non-unique index on B.
        let b = rows[0].attr(1);
        assert!(
            tdb.read(txn, tid, 1, b)
                .unwrap()
                .iter()
                .any(|t| t.attr(0) == k),
            "inserted key {k} missing from I_B"
        );
    }
    tdb.commit(txn);
}

#[test]
fn concurrent_updates_with_side_files() {
    concurrent_updates_during_bulk(PropagationMode::SideFile);
}

#[test]
fn concurrent_updates_with_direct_propagation() {
    concurrent_updates_during_bulk(PropagationMode::Direct);
}

#[test]
fn updater_deletes_during_bulk_propagation() {
    let (tdb, tid, a_values) = setup(3000);
    let victims: Vec<u64> = a_values.iter().copied().step_by(3).collect();
    let victim_set: HashSet<u64> = victims.iter().copied().collect();
    // Keys the updater will point-delete: survivors only.
    let updater_targets: Vec<u64> = a_values
        .iter()
        .copied()
        .filter(|k| !victim_set.contains(k))
        .step_by(7)
        .take(60)
        .collect();

    std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            s.spawn(move || {
                tdb.bulk_delete(tid, 0, &victims, PropagationMode::SideFile)
                    .unwrap()
            })
        };
        let del = {
            let tdb = tdb.clone();
            let targets = updater_targets.clone();
            s.spawn(move || {
                let mut n = 0;
                for k in targets {
                    let txn = tdb.begin();
                    n += tdb.delete_row(txn, tid, 0, k).unwrap().len();
                    tdb.commit(txn);
                }
                n
            })
        };
        bulk.join().unwrap();
        assert_eq!(del.join().unwrap(), updater_targets.len());
    });

    tdb.with(|db| db.check_consistency(tid).unwrap());
    let txn = tdb.begin();
    for &k in updater_targets.iter().step_by(11) {
        assert!(tdb.read(txn, tid, 0, k).unwrap().is_empty());
    }
    tdb.commit(txn);
}

#[test]
fn concurrent_workload_matches_shadow_model() {
    // Model-check a full concurrent workload: the bulk delete (side-file
    // propagation) races updater inserts and point deletes; afterwards the
    // ShadowDb model — fed the same logical operations — must derive the
    // exact state of every engine structure. The mirrors are applied after
    // the join: updater keys are fresh and point-delete targets are
    // survivors, so the final state is interleaving-independent — but only
    // under the order victims → point deletes → inserts. The heap recycles
    // freed slots, so a writer insert can land on the exact RID a point
    // delete just vacated; deletes must therefore be modelled before the
    // inserts that may reuse their slots (the reverse never happens: the
    // deleter targets original survivors, never writer rows).
    let (tdb, tid, a_values) = setup(2500);
    let mut shadow = tdb.with(|db| bd_core::ShadowDb::mirror_of(db, tid).unwrap());
    let victims: Vec<u64> = a_values.iter().copied().step_by(3).collect();
    let victim_set: HashSet<u64> = victims.iter().copied().collect();
    let point_targets: Vec<u64> = a_values
        .iter()
        .copied()
        .filter(|k| !victim_set.contains(k))
        .step_by(9)
        .take(40)
        .collect();

    let (inserted, point_deleted) = std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            s.spawn(move || {
                tdb.bulk_delete(tid, 0, &victims, PropagationMode::SideFile)
                    .unwrap()
            })
        };
        let writers: Vec<_> = (0..2u64)
            .map(|u| {
                let tdb = tdb.clone();
                s.spawn(move || {
                    let mut rows = Vec::new();
                    for i in 0..40 {
                        let txn = tdb.begin();
                        let t = fresh_tuple(u * 10_000 + i);
                        let rid = tdb.insert(txn, tid, &t).unwrap();
                        rows.push((rid, t));
                        tdb.commit(txn);
                    }
                    rows
                })
            })
            .collect();
        let deleter = {
            let tdb = tdb.clone();
            let targets = point_targets.clone();
            s.spawn(move || {
                let mut rids = Vec::new();
                for k in targets {
                    let txn = tdb.begin();
                    rids.extend(tdb.delete_row(txn, tid, 0, k).unwrap());
                    tdb.commit(txn);
                }
                rids
            })
        };
        assert_eq!(bulk.join().unwrap(), victims.len());
        let inserted: Vec<_> = writers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        (inserted, deleter.join().unwrap())
    });

    shadow.delete_in(tid, 0, &victims);
    assert_eq!(point_deleted.len(), point_targets.len());
    for rid in point_deleted {
        shadow.delete(tid, rid).expect("model held the deleted row");
    }
    for (rid, t) in inserted {
        shadow.insert(tid, rid, t);
    }

    let report = tdb.with(|db| shadow.diff(db, tid).unwrap());
    assert!(report.is_clean(), "model vs engine diverged: {report}");
}

#[test]
fn unique_constraint_still_enforced_after_bulk() {
    let (tdb, tid, a_values) = setup(500);
    let keep = a_values[0];
    let victims: Vec<u64> = a_values[1..100].to_vec();
    tdb.bulk_delete(tid, 0, &victims, PropagationMode::SideFile)
        .unwrap();
    let txn = tdb.begin();
    // Re-inserting a surviving unique key fails.
    let dup = Tuple::new(vec![keep, 9_000_001, 9_000_003, 1]);
    assert!(tdb.insert(txn, tid, &dup).is_err());
    // Re-inserting a deleted key succeeds.
    let again = Tuple::new(vec![victims[0], 9_000_005, 9_000_007, 2]);
    tdb.insert(txn, tid, &again).unwrap();
    tdb.commit(txn);
    tdb.with(|db| db.check_consistency(tid).unwrap());
}

#[test]
fn two_bulk_deletes_serialize() {
    let (tdb, tid, a_values) = setup(2000);
    let first: Vec<u64> = a_values.iter().copied().step_by(4).collect();
    let second: Vec<u64> = a_values.iter().copied().skip(1).step_by(4).collect();
    std::thread::scope(|s| {
        let h1 = {
            let tdb = tdb.clone();
            let v = first.clone();
            s.spawn(move || {
                tdb.bulk_delete(tid, 0, &v, PropagationMode::SideFile)
                    .unwrap()
            })
        };
        let h2 = {
            let tdb = tdb.clone();
            let v = second.clone();
            s.spawn(move || {
                tdb.bulk_delete(tid, 0, &v, PropagationMode::Direct)
                    .unwrap()
            })
        };
        assert_eq!(h1.join().unwrap(), first.len());
        assert_eq!(h2.join().unwrap(), second.len());
    });
    tdb.with(|db| db.check_consistency(tid).unwrap());
    let remaining = tdb.with(|db| db.table(tid).unwrap().heap.len());
    assert_eq!(remaining, 2000 - first.len() - second.len());
}
