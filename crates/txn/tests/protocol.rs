//! Finer-grained protocol tests for §3.1: lock interaction, offline-index
//! semantics, and the commit point.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bd_core::{Database, DatabaseConfig, IndexDef, Tuple};
use bd_txn::{PropagationMode, TxnDb};
use bd_workload::TableSpec;

fn setup(n_rows: usize) -> (Arc<TxnDb>, usize, Vec<u64>) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let spec = TableSpec::tiny(n_rows);
    let w = spec.build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    let tid = w.tid;
    let a = w.a_values.clone();
    (TxnDb::new(db), tid, a)
}

#[test]
fn updater_blocks_during_exclusive_phase_then_proceeds() {
    let (tdb, tid, a_values) = setup(4000);
    let victims: Vec<u64> = a_values.iter().copied().step_by(2).collect();
    let bulk_started = Arc::new(AtomicBool::new(false));
    let insert_done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let flag = bulk_started.clone();
            let victims = victims.clone();
            s.spawn(move || {
                flag.store(true, Ordering::SeqCst);
                tdb.bulk_delete(tid, 0, &victims, PropagationMode::SideFile)
                    .unwrap()
            })
        };
        // Wait for the bulk delete to start, then insert: the insert must
        // succeed eventually (blocking on the table lock / unique gates,
        // never erroring).
        while !bulk_started.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let ins = {
            let tdb = tdb.clone();
            let flag = insert_done.clone();
            s.spawn(move || {
                let txn = tdb.begin();
                tdb.insert(
                    txn,
                    tid,
                    &Tuple::new(vec![7_000_001, 7_000_003, 7_000_005, 1]),
                )
                .unwrap();
                tdb.commit(txn);
                flag.store(true, Ordering::SeqCst);
            })
        };
        bulk.join().unwrap();
        ins.join().unwrap();
    });
    assert!(insert_done.load(Ordering::SeqCst));
    tdb.with(|db| db.check_consistency(tid).unwrap());
}

#[test]
fn reads_through_offline_index_wait_for_consistency() {
    // A reader querying through the non-unique index during the bulk delete
    // must never observe a half-deleted state: every row it returns for a
    // surviving key exists, and bulk-deleted keys are never returned after
    // the index comes online.
    let (tdb, tid, a_values) = setup(5000);
    let victims: Vec<u64> = a_values.iter().copied().step_by(2).collect();
    let victim_set: std::collections::HashSet<u64> = victims.iter().copied().collect();

    std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            s.spawn(move || {
                tdb.bulk_delete(tid, 0, &victims, PropagationMode::SideFile)
                    .unwrap()
            })
        };
        let reader = {
            let tdb = tdb.clone();
            s.spawn(move || {
                let mut reads = 0usize;
                for i in 0..50u64 {
                    let txn = tdb.begin();
                    // Index 1 goes offline during the bulk delete; read()
                    // waits for it to come back online.
                    let rows = tdb.read(txn, tid, 1, i * 10).unwrap();
                    tdb.commit(txn);
                    reads += rows.len();
                    std::thread::sleep(Duration::from_micros(200));
                }
                reads
            })
        };
        bulk.join().unwrap();
        let _ = reader.join().unwrap();
    });

    // After everything settles: no victim key is visible anywhere.
    let txn = tdb.begin();
    for &v in victims.iter().step_by(211) {
        assert!(tdb.read(txn, tid, 0, v).unwrap().is_empty());
        let _ = victim_set;
    }
    tdb.commit(txn);
    tdb.with(|db| db.check_consistency(tid).unwrap());
}

#[test]
fn empty_bulk_delete_is_safe_under_concurrency() {
    let (tdb, tid, _) = setup(500);
    let n = tdb
        .bulk_delete(tid, 0, &[], PropagationMode::SideFile)
        .unwrap();
    assert_eq!(n, 0);
    // Indices must all be online again.
    let txn = tdb.begin();
    assert!(tdb.read(txn, tid, 1, 0).is_ok());
    tdb.commit(txn);
    tdb.with(|db| db.check_consistency(tid).unwrap());
}

#[test]
fn bulk_delete_missing_probe_index_errors_cleanly() {
    let mut db = Database::new(DatabaseConfig::with_total_memory(1 << 20));
    let w = TableSpec::tiny(100).build(&mut db).unwrap();
    // No index at all.
    let tid = w.tid;
    let tdb = TxnDb::new(db);
    let err = tdb.bulk_delete(tid, 0, &[1, 2], PropagationMode::SideFile);
    assert!(err.is_err());
    // The failed attempt must not leave stale locks: a subsequent insert
    // works.
    let txn = tdb.begin();
    tdb.insert(txn, tid, &Tuple::new(vec![1, 2, 3, 4])).unwrap();
    tdb.commit(txn);
}

#[test]
fn direct_mode_protects_reinserted_entries() {
    // Delete keys, then (while propagation may still be pending) re-insert
    // rows with the same secondary-index keys as deleted rows: direct
    // propagation must never delete the new entries.
    let (tdb, tid, a_values) = setup(3000);
    let victims: Vec<u64> = a_values.iter().copied().step_by(2).collect();
    let reinserted: Vec<Tuple> = (0..50u64)
        .map(|i| {
            Tuple::new(vec![
                8_000_001 + 2 * i,
                8_100_001 + 2 * i,
                8_200_001 + 2 * i,
                i,
            ])
        })
        .collect();

    std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            s.spawn(move || {
                tdb.bulk_delete(tid, 0, &victims, PropagationMode::Direct)
                    .unwrap()
            })
        };
        let ins = {
            let tdb = tdb.clone();
            let rows = reinserted.clone();
            s.spawn(move || {
                for t in &rows {
                    let txn = tdb.begin();
                    tdb.insert(txn, tid, t).unwrap();
                    tdb.commit(txn);
                }
            })
        };
        bulk.join().unwrap();
        ins.join().unwrap();
    });

    let txn = tdb.begin();
    for t in &reinserted {
        let rows = tdb.read(txn, tid, 0, t.attr(0)).unwrap();
        assert_eq!(rows.len(), 1, "reinserted key {} lost", t.attr(0));
    }
    tdb.commit(txn);
    tdb.with(|db| db.check_consistency(tid).unwrap());
}
