//! Tests of the online (chunked, paced) bulk-delete path: correctness vs
//! the offline protocol, reader survival through leaf reorganisation,
//! pause-with-zero-pins, and cancel-leaves-a-consistent-prefix.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use bd_core::{Database, DatabaseConfig, IndexDef, ShadowDb, Tuple};
use bd_storage::Pacer;
use bd_txn::{PropagationMode, TxnDb};
use bd_workload::TableSpec;

fn setup(n_rows: usize) -> (Arc<TxnDb>, usize, Vec<u64>) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let spec = TableSpec::tiny(n_rows);
    let w = spec.build(&mut db).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(0).unique())
        .unwrap();
    w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
    w.attach_index(&mut db, IndexDef::secondary(2)).unwrap();
    let tid = w.tid;
    let a_values = w.a_values.clone();
    (TxnDb::new(db), tid, a_values)
}

/// Fresh keys outside the generated domain (generated values are multiples
/// of 10, bounded well below these).
fn fresh_tuple(i: u64) -> Tuple {
    Tuple::new(vec![
        1_000_001 + i * 2,
        2_000_001 + i * 2,
        3_000_001 + i * 2,
        i,
    ])
}

#[test]
fn live_delete_matches_the_shadow_model() {
    for mode in [PropagationMode::SideFile, PropagationMode::Direct] {
        let (tdb, tid, a_values) = setup(2000);
        let mut shadow = tdb.with(|db| ShadowDb::mirror_of(db, tid).unwrap());
        let victims: Vec<u64> = a_values.iter().copied().step_by(3).collect();
        let pacer = Pacer::new();
        let stats = tdb
            .bulk_delete_live(tid, 0, &victims, mode, 97, &pacer)
            .unwrap();
        assert_eq!(stats.deleted, victims.len());
        assert_eq!(stats.chunks, victims.len().div_ceil(97));
        shadow.delete_in(tid, 0, &victims);
        let report = tdb.with(|db| shadow.diff(db, tid).unwrap());
        assert!(report.is_clean(), "{mode:?}: {report}");
        tdb.with(|db| db.check_consistency(tid).unwrap());
    }
}

#[test]
fn live_delete_interleaves_foreground_traffic() {
    let (tdb, tid, a_values) = setup(3000);
    let mut shadow = tdb.with(|db| ShadowDb::mirror_of(db, tid).unwrap());
    let victims: Vec<u64> = a_values.iter().copied().step_by(3).collect();
    let victim_set: HashSet<u64> = victims.iter().copied().collect();
    let survivors: Vec<u64> = a_values
        .iter()
        .copied()
        .filter(|k| !victim_set.contains(k))
        .collect();
    let pacer = Pacer::new();

    let inserted = std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            let pacer = pacer.clone();
            s.spawn(move || {
                tdb.bulk_delete_live(tid, 0, &victims, PropagationMode::SideFile, 64, &pacer)
                    .unwrap()
            })
        };
        // Point reads through the probe index, which never goes offline:
        // survivors must stay readable for the whole run.
        let reader = {
            let tdb = tdb.clone();
            let survivors = survivors.clone();
            s.spawn(move || {
                for &k in survivors.iter().step_by(7) {
                    let txn = tdb.begin();
                    let rows = tdb.read(txn, tid, 0, k).unwrap();
                    assert_eq!(rows.len(), 1, "survivor {k} unreadable mid-delete");
                    tdb.commit(txn);
                }
            })
        };
        // Range scans across the live reorganisation: every batch-wise
        // scan must return each survivor in range exactly once.
        let scanner = {
            let tdb = tdb.clone();
            let survivors = survivors.clone();
            s.spawn(move || {
                let (lo, hi) = (5_000u64, 12_000u64);
                let in_range: Vec<u64> = survivors
                    .iter()
                    .copied()
                    .filter(|&k| (lo..=hi).contains(&k))
                    .collect();
                for _ in 0..8 {
                    let txn = tdb.begin();
                    let rows = tdb.range_read(txn, tid, 0, lo, hi).unwrap();
                    tdb.commit(txn);
                    let seen: Vec<u64> = rows.iter().map(|t| t.attr(0)).collect();
                    let seen_set: HashSet<u64> = seen.iter().copied().collect();
                    assert_eq!(seen.len(), seen_set.len(), "duplicate in range scan");
                    for &k in &in_range {
                        assert!(seen_set.contains(&k), "survivor {k} missing from scan");
                    }
                    for &k in &seen {
                        assert!((lo..=hi).contains(&k), "out-of-range key {k}");
                    }
                }
            })
        };
        let writer = {
            let tdb = tdb.clone();
            s.spawn(move || {
                let mut rows = Vec::new();
                for i in 0..60 {
                    let txn = tdb.begin();
                    let t = fresh_tuple(i);
                    let rid = tdb.insert(txn, tid, &t).unwrap();
                    rows.push((rid, t));
                    tdb.commit(txn);
                }
                rows
            })
        };
        let stats = bulk.join().unwrap();
        assert_eq!(stats.deleted, victims.len());
        reader.join().unwrap();
        scanner.join().unwrap();
        writer.join().unwrap()
    });

    shadow.delete_in(tid, 0, &victims);
    for (rid, t) in inserted {
        shadow.insert(tid, rid, t);
    }
    let report = tdb.with(|db| shadow.diff(db, tid).unwrap());
    assert!(report.is_clean(), "model vs engine diverged: {report}");
    tdb.with(|db| db.check_consistency(tid).unwrap());
}

#[test]
fn paused_live_delete_holds_no_pins_and_resumes_clean() {
    let (tdb, tid, a_values) = setup(2000);
    let mut shadow = tdb.with(|db| ShadowDb::mirror_of(db, tid).unwrap());
    let victims: Vec<u64> = a_values.iter().copied().step_by(2).collect();
    let pool = tdb.with(|db| db.pool().clone());
    let pacer = Pacer::new();
    // Trip somewhere inside the run — between chunks or mid-leaf-walk
    // inside one, both of which must be pin-free quiescent points.
    pacer.pause_after(23);

    let stats = std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            let pacer = pacer.clone();
            s.spawn(move || {
                tdb.bulk_delete_live(tid, 0, &victims, PropagationMode::SideFile, 32, &pacer)
                    .unwrap()
            })
        };
        assert!(
            pacer.wait_parked(1, Duration::from_secs(10)),
            "deleter never parked"
        );
        assert_eq!(
            pool.pinned_frames(),
            0,
            "paused delete holds a pinned frame"
        );
        pacer.resume();
        bulk.join().unwrap()
    });
    assert_eq!(stats.deleted, victims.len());

    shadow.delete_in(tid, 0, &victims);
    let report = tdb.with(|db| shadow.diff(db, tid).unwrap());
    assert!(report.is_clean(), "paused+resumed run diverged: {report}");
    tdb.with(|db| db.check_consistency(tid).unwrap());
}

#[test]
fn cancelled_live_delete_leaves_a_consistent_prefix() {
    let (tdb, tid, a_values) = setup(2000);
    let victims: Vec<u64> = a_values.iter().copied().step_by(2).collect();
    let pacer = Pacer::new();
    pacer.pause_after(17);

    let err = std::thread::scope(|s| {
        let bulk = {
            let tdb = tdb.clone();
            let victims = victims.clone();
            let pacer = pacer.clone();
            s.spawn(move || {
                tdb.bulk_delete_live(tid, 0, &victims, PropagationMode::SideFile, 32, &pacer)
            })
        };
        assert!(pacer.wait_parked(1, Duration::from_secs(10)));
        pacer.cancel();
        bulk.join().unwrap()
    });
    assert!(err.is_err(), "cancelled run must report the cancellation");

    // Every structure is consistent, every gate back online (reads on the
    // offline-able indices would hang otherwise), and the deleted set is a
    // subset of D: each victim is fully present or fully gone, and every
    // survivor is untouched.
    tdb.with(|db| db.check_consistency(tid).unwrap());
    let victim_set: HashSet<u64> = victims.iter().copied().collect();
    let txn = tdb.begin();
    let mut gone = 0usize;
    for &v in &victims {
        let rows = tdb.read(txn, tid, 0, v).unwrap();
        assert!(rows.len() <= 1);
        if rows.is_empty() {
            gone += 1;
        } else {
            // Still reachable through a non-unique index too.
            let b = rows[0].attr(1);
            assert!(tdb
                .read(txn, tid, 1, b)
                .unwrap()
                .iter()
                .any(|t| t.attr(0) == v));
        }
    }
    assert!(gone > 0, "cancel landed before any chunk committed");
    assert!(gone < victims.len(), "cancel landed after the whole run");
    for &k in a_values
        .iter()
        .filter(|k| !victim_set.contains(k))
        .step_by(9)
    {
        assert_eq!(tdb.read(txn, tid, 0, k).unwrap().len(), 1);
    }
    tdb.commit(txn);
    let remaining = tdb.with(|db| db.table(tid).unwrap().heap.len());
    assert_eq!(remaining, 2000 - gone);
}

#[test]
fn maintenance_hook_runs_between_live_delete_chunks() {
    use bd_core::{audit_catalog, Maintainer, MaintenanceConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let (tdb, tid, a_values) = setup(2000);
    let maintainer = Arc::new(Mutex::new(Maintainer::new(MaintenanceConfig::default())));
    let calls = Arc::new(AtomicUsize::new(0));
    {
        let maintainer = maintainer.clone();
        let calls = calls.clone();
        tdb.set_maintenance(Some(Box::new(move |db| {
            calls.fetch_add(1, Ordering::Relaxed);
            maintainer.lock().unwrap().run_round(db)?;
            Ok(())
        })));
    }

    // Delete everything: each chunk empties heap pages and index subtrees,
    // and the hook recycles them while the statement is still running.
    let pacer = Pacer::new();
    let stats = tdb
        .bulk_delete_live(tid, 0, &a_values, PropagationMode::SideFile, 97, &pacer)
        .unwrap();
    assert_eq!(stats.deleted, a_values.len());
    assert_eq!(
        calls.load(Ordering::Relaxed),
        stats.chunks,
        "one maintenance slice per pause point"
    );

    // Settle: finish the in-flight pass, then one more cycle so pages freed
    // during the last pass become reusable too.
    tdb.with(|db| {
        let mut m = maintainer.lock().unwrap();
        m.run_cycle(db).unwrap();
        m.run_cycle(db).unwrap();
        let rep = *m.report();
        assert!(rep.pages_reclaimed > 0, "{rep:?}");
        assert!(db.pool().n_reusable() > 0);
        db.check_consistency(tid).unwrap();
        let audit = audit_catalog(db, tid).unwrap();
        assert!(audit.is_clean(), "{:?}", audit.findings);
    });
}
