//! RESTRICT/CASCADE constraints under the parallel executor and under
//! the live (chunked, paced) delete path.
//!
//! The ordering contract under test: constraint enforcement happens at
//! *plan* time, before any fan-out arm runs, any index goes offline, or
//! any page is pinned for writing — a RESTRICT abort must leave zero
//! pinned frames, every structure untouched, and a clean catalog audit.

use std::sync::Arc;
use std::time::Duration;

use bd_btree::ReorgPolicy;
use bd_core::{
    audit_catalog, audit_equivalence, plan_cascade, run_cascade, run_cascade_step, Database,
    DatabaseConfig, DbError, ForeignKey, IndexDef, Schema, TableId, Tuple,
};
use bd_storage::Pacer;
use bd_txn::{PropagationMode, TxnDb, TxnError};

// High-entropy values: equivalence audits and the proof-of-deletion scan
// raw page bytes, so low-entropy values would collide with metadata.
fn tag(ns: u64, i: u64) -> u64 {
    0xFE57_0000_0000_0000 | (ns << 40) | (i * 0x0101 + 1)
}

const N_ROOT: u64 = 12;

/// Victims: half the roots; each takes 2 B children and 4 C grandchildren.
const DELETED: usize = (N_ROOT as usize / 2) * (1 + 2 + 4);

/// A ← B ← C, both edges CASCADE. Same shape as the WAL campaign
/// fixture: every table keeps survivor rows, B carries a hash index.
fn build() -> (Database, TableId) {
    let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
    let mut tids = Vec::new();
    for name in ["A", "B", "C"] {
        let tid = db.create_table(name, Schema::new(3, 64));
        db.create_index(tid, IndexDef::secondary(0).unique())
            .unwrap();
        db.create_index(tid, IndexDef::secondary(1)).unwrap();
        tids.push(tid);
    }
    let (a, b, c) = (tids[0], tids[1], tids[2]);
    db.create_hash_index(b, 2).unwrap();
    db.add_foreign_key(ForeignKey::cascade("fk_ab", a, 0, b, 1));
    db.add_foreign_key(ForeignKey::cascade("fk_bc", b, 0, c, 1));
    for i in 0..N_ROOT {
        db.insert(a, &Tuple::new(vec![tag(1, i), tag(6, i), tag(7, i)]))
            .unwrap();
        for j in 0..2 {
            let bk = tag(2, i * 4 + j);
            db.insert(b, &Tuple::new(vec![bk, tag(1, i), tag(8, i * 4 + j)]))
                .unwrap();
            for k in 0..2 {
                let ck = (i * 4 + j) * 4 + k;
                db.insert(c, &Tuple::new(vec![tag(3, ck), bk, tag(9, ck)]))
                    .unwrap();
            }
        }
    }
    (db, a)
}

/// The cascade fixture plus a fourth table R referencing A with RESTRICT:
/// the campaign's closure is blocked no matter how much of it is CASCADE.
fn build_with_restrict() -> (Database, TableId, TableId) {
    let (mut db, a) = build();
    let r = db.create_table("R", Schema::new(2, 64));
    db.create_index(r, IndexDef::secondary(0)).unwrap();
    db.add_foreign_key(ForeignKey::restrict("fk_ar", a, 0, r, 0));
    // Every root is referenced, so any victim set trips the constraint.
    for i in 0..N_ROOT {
        db.insert(r, &Tuple::new(vec![tag(1, i), tag(4, i)]))
            .unwrap();
    }
    (db, a, r)
}

fn victims() -> Vec<u64> {
    (0..N_ROOT).step_by(2).map(|i| tag(1, i)).collect()
}

fn rows(db: &Database, tid: TableId) -> usize {
    db.table(tid).unwrap().heap.dump().unwrap().len()
}

#[test]
fn cascade_under_the_parallel_executor_matches_serial() {
    let (mut serial, root) = build();
    let (mut parallel, _) = build();
    let d = victims();
    let plan = plan_cascade(&serial, root, 0, &d).unwrap();
    assert_eq!(plan.steps.len(), 3);

    run_cascade(&mut serial, &plan, ReorgPolicy::FreeAtEmpty).unwrap();
    let mut deleted = 0;
    for step in &plan.steps {
        deleted += run_cascade_step(&mut parallel, step, ReorgPolicy::FreeAtEmpty, 3)
            .unwrap()
            .deleted
            .len();
    }
    assert_eq!(deleted, DELETED);
    for t in 0..3 {
        let eq = audit_equivalence(&serial, &parallel, t).unwrap();
        assert!(eq.is_clean(), "table {t} diverged under fan-out: {eq}");
        parallel.check_consistency(t).unwrap();
        audit_catalog(&parallel, t).unwrap().into_result().unwrap();
    }
    assert_eq!(parallel.pool().pinned_frames(), 0);
}

#[test]
fn restrict_abort_under_the_parallel_executor_leaves_zero_pins_and_clean_audit() {
    let (db, root, _) = build_with_restrict();
    let (reference, _, _) = build_with_restrict();

    // Enforcement happens at plan time — before any fan-out arm exists to
    // race it, "no work needs to be undone".
    let err = plan_cascade(&db, root, 0, &victims()).unwrap_err();
    assert!(
        matches!(err, DbError::ForeignKeyViolation { ref name, .. } if name == "fk_ar"),
        "unexpected error: {err}"
    );
    assert_eq!(db.pool().pinned_frames(), 0, "abort must release every pin");
    for t in 0..4 {
        let eq = audit_equivalence(&reference, &db, t).unwrap();
        assert!(eq.is_clean(), "aborted plan touched table {t}: {eq}");
        audit_catalog(&db, t).unwrap().into_result().unwrap();
    }
}

#[test]
fn restrict_abort_under_bulk_delete_live_leaves_zero_pins_and_clean_audit() {
    let (db, root, r) = build_with_restrict();
    let tdb = TxnDb::new(db);
    let err = tdb
        .erase_cascade_live(
            root,
            0,
            &victims(),
            PropagationMode::SideFile,
            4,
            &Pacer::new(),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            TxnError::Db(DbError::ForeignKeyViolation { ref name, .. }) if name == "fk_ar"
        ),
        "unexpected error: {err}"
    );

    tdb.with(|db| {
        assert_eq!(db.pool().pinned_frames(), 0, "abort must release every pin");
        assert_eq!(rows(db, root), N_ROOT as usize);
        assert_eq!(rows(db, r), N_ROOT as usize);
        for t in 0..4 {
            db.check_consistency(t).unwrap();
            audit_catalog(db, t).unwrap().into_result().unwrap();
        }
    });
    // No index ever went offline: a foreground read proceeds immediately.
    let txn = tdb.begin();
    let hit = tdb.read(txn, root, 0, tag(1, 0)).unwrap();
    assert_eq!(hit.len(), 1);
    tdb.commit(txn);
}

#[test]
fn cascade_under_bulk_delete_live_erases_and_proves() {
    for mode in [PropagationMode::SideFile, PropagationMode::Direct] {
        let (mut reference, root) = build();
        let plan = plan_cascade(&reference, root, 0, &victims()).unwrap();
        run_cascade(&mut reference, &plan, ReorgPolicy::FreeAtEmpty).unwrap();

        let (db, _) = build();
        let tdb = TxnDb::new(db);
        let stats = tdb
            .erase_cascade_live(root, 0, &victims(), mode, 4, &Pacer::new())
            .unwrap();
        assert_eq!(stats.deleted, DELETED, "{mode:?}");
        assert_eq!(stats.steps.len(), 3);
        assert!(
            stats.report.is_clean(),
            "{mode:?}: {}",
            stats.report.render()
        );
        tdb.with(|db| {
            assert_eq!(db.pool().pinned_frames(), 0);
            for t in 0..3 {
                let eq = audit_equivalence(&reference, db, t).unwrap();
                assert!(eq.is_clean(), "{mode:?} table {t}: {eq}");
                db.check_consistency(t).unwrap();
                audit_catalog(db, t).unwrap().into_result().unwrap();
            }
        });
    }
}

#[test]
fn live_campaign_cancel_stops_with_a_consistent_prefix() {
    let (db, root) = build();
    let tdb: Arc<TxnDb> = TxnDb::new(db);
    let pacer = Pacer::new();
    // Park at the second pacer check (inside the first step's chunk
    // stream), then cancel: the campaign must stop between chunks with
    // every completed chunk committed and every index back online.
    pacer.pause_after(2);
    let worker = {
        let tdb = Arc::clone(&tdb);
        let pacer = pacer.clone();
        std::thread::spawn(move || {
            tdb.erase_cascade_live(root, 0, &victims(), PropagationMode::SideFile, 4, &pacer)
        })
    };
    assert!(
        pacer.wait_parked(1, Duration::from_secs(10)),
        "campaign never parked"
    );
    pacer.cancel();
    assert!(worker.join().unwrap().is_err(), "cancelled run must error");

    tdb.with(|db| {
        assert_eq!(db.pool().pinned_frames(), 0);
        for t in 0..3 {
            db.check_consistency(t).unwrap();
            audit_catalog(db, t).unwrap().into_result().unwrap();
            let n = rows(db, t);
            let full = [N_ROOT as usize, 2 * N_ROOT as usize, 4 * N_ROOT as usize][t];
            assert!(n <= full, "table {t} grew: {n} > {full}");
            assert!(
                n >= full / 2,
                "table {t} lost survivors: {n} < {}",
                full / 2
            );
        }
    });
    // Every gate is back online: foreground traffic is unblocked.
    let txn = tdb.begin();
    let hit = tdb.read(txn, root, 1, tag(6, 1)).unwrap();
    assert_eq!(hit.len(), 1, "surviving root must stay readable");
    tdb.commit(txn);
}
