//! Concurrent database wrapper: bulk deletes running alongside updater
//! transactions, per the protocol of §3.1.
//!
//! Timeline of [`TxnDb::bulk_delete`]:
//!
//! 1. acquire the **exclusive table lock**, switch every index offline;
//! 2. process the base table, the probe index, and all **unique indices**
//!    (unique first, so the constraint stays checkable);
//! 3. commit: release the table lock, bring probe + unique indices online —
//!    "As soon as table R and all unique indices are processed ... the lock
//!    on R is released and the unique indices are brought on-line";
//! 4. propagate deletions to the remaining indices while updaters run,
//!    capturing their changes per [`PropagationMode`]:
//!    * **side-file** — updater changes are logged and replayed; appends
//!      continue during catch-up; a final quiesce drains the tail;
//!    * **direct** — updaters install changes into the offline tree
//!      directly, marking inserted entries *undeletable* so the bulk
//!      deleter cannot remove a re-used `(key, RID)`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bd_btree::{bulk_delete_by_keys, bulk_delete_sorted, Key, RangeCursor, ReorgPolicy};
use bd_core::{Database, DbError, DbResult, TableId, Tuple};
use bd_exec::{sort_all, ByRid};
use bd_storage::{io_scope::bypass_cancel, Pacer, Rid};

use crate::error::TxnResult;
use crate::gate::{IndexGate, IndexState};
use crate::lock::{LockManager, LockMode, TxnId};
use crate::sidefile::{apply_ops, SideFile, SideOp};

/// How updater changes reach offline indices (§3.1.1 vs §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationMode {
    /// Log updater changes to side-files, replay before going online.
    SideFile,
    /// Install updater changes directly with undeletable marks.
    Direct,
}

/// Batch size for side-file catch-up; below this the side-file is
/// quiesced and drained ("when nearly the whole side-file is processed").
const CATCHUP_BATCH: usize = 64;

/// `(key, rid)` entries a [`TxnDb::range_read`] harvests per db-mutex span.
const RANGE_BATCH: usize = 64;

/// What a [`TxnDb::bulk_delete_live`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveDeleteStats {
    /// Records deleted from the base table.
    pub deleted: usize,
    /// Exclusive chunk spans the delete was split into.
    pub chunks: usize,
}

/// What a [`TxnDb::erase_cascade_live`] campaign accomplished.
#[derive(Debug)]
pub struct LiveCampaignStats {
    /// One entry per cascade step, children first (plan order).
    pub steps: Vec<LiveDeleteStats>,
    /// Victim rows deleted across every table of the cascade.
    pub deleted: usize,
    /// What the whole-database physical scrub destroyed.
    pub scrub: bd_core::ScrubReport,
    /// The proof of deletion over every page and replica surface.
    pub report: bd_core::ErasureReport,
}

type IndexKey = (TableId, usize);

/// Thread-safe database with the §3.1 bulk-delete protocol.
pub struct TxnDb {
    db: Mutex<Database>,
    locks: LockManager,
    gates: Mutex<HashMap<IndexKey, Arc<IndexGate>>>,
    sidefiles: Mutex<HashMap<IndexKey, Arc<SideFile>>>,
    undeletable: Mutex<HashSet<(usize, Key, Rid)>>,
    /// Serializes whole bulk-delete operations: a second bulk delete must
    /// not take indices offline while the first is still propagating.
    bulk_serial: Mutex<()>,
    /// Optional background-maintenance slice run between live-delete
    /// chunks, while no table lock is held (see [`TxnDb::set_maintenance`]).
    maintenance: Mutex<Option<MaintenanceHook>>,
    next_txn: AtomicU64,
}

/// A resumable maintenance step (typically
/// [`bd_core::Maintainer::run_round`] behind a closure).
pub type MaintenanceHook = Box<dyn FnMut(&mut Database) -> DbResult<()> + Send>;

impl TxnDb {
    /// Wrap a database for concurrent use.
    pub fn new(db: Database) -> Arc<Self> {
        Arc::new(TxnDb {
            db: Mutex::new(db),
            locks: LockManager::default(),
            gates: Mutex::new(HashMap::new()),
            sidefiles: Mutex::new(HashMap::new()),
            undeletable: Mutex::new(HashSet::new()),
            bulk_serial: Mutex::new(()),
            maintenance: Mutex::new(None),
            next_txn: AtomicU64::new(1),
        })
    }

    /// Install (or clear) the incremental-maintenance hook. When set, every
    /// between-chunk pause point of [`TxnDb::bulk_delete_live`] runs one
    /// slice of it under the db mutex but outside any table lock, so page
    /// recycling and leaf packing interleave with the delete instead of
    /// waiting for an offline window.
    pub fn set_maintenance(&self, hook: Option<MaintenanceHook>) {
        *self.maintenance.lock() = hook;
    }

    /// Run setup/inspection code against the underlying database.
    pub fn with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock())
    }

    /// Start a transaction.
    pub fn begin(&self) -> TxnId {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// Commit: release all locks.
    pub fn commit(&self, txn: TxnId) {
        self.locks.release_all(txn);
    }

    fn gate(&self, key: IndexKey) -> Arc<IndexGate> {
        self.gates.lock().entry(key).or_default().clone()
    }

    fn sidefile(&self, key: IndexKey) -> Arc<SideFile> {
        self.sidefiles.lock().entry(key).or_default().clone()
    }

    fn index_defs(&self, tid: TableId) -> DbResult<Vec<(usize, bool)>> {
        let db = self.db.lock();
        Ok(db
            .table(tid)?
            .indices
            .iter()
            .map(|i| (i.def.attr, i.def.unique))
            .collect())
    }

    /// Updater insert: waits for unique indices, routes changes to offline
    /// non-unique indices via side-file or direct propagation.
    pub fn insert(&self, txn: TxnId, tid: TableId, tuple: &Tuple) -> TxnResult<Rid> {
        self.locks.acquire(txn, tid, LockMode::Shared)?;
        'retry: loop {
            let defs = self.index_defs(tid)?;
            // Unique indices must be online for the constraint check.
            for &(attr, unique) in &defs {
                if unique {
                    self.gate((tid, attr)).wait_online();
                }
            }
            let mut db = self.db.lock();
            let table = db.table_mut(tid)?;
            let bytes = table.schema.encode(tuple)?;
            for index in &table.indices {
                if index.def.unique {
                    if !self.gate((tid, index.def.attr)).is_online() {
                        // Went offline between the wait and the lock: retry.
                        drop(db);
                        continue 'retry;
                    }
                    let key = tuple.attr(index.def.attr);
                    if !index.tree.search(key)?.is_empty() {
                        return Err(DbError::DuplicateKey {
                            attr: index.def.attr,
                            key,
                        }
                        .into());
                    }
                }
            }
            let rid = table.heap.insert(&bytes)?;
            let schema = table.schema;
            for h in &mut table.hash_indices {
                h.index.insert(schema.attr_of(&bytes, h.def.attr), rid)?;
            }
            for index in &mut table.indices {
                let attr = index.def.attr;
                let key = schema.attr_of(&bytes, attr);
                match self.gate((tid, attr)).state() {
                    IndexState::Online => index.tree.insert(key, rid)?,
                    IndexState::OfflineSideFile => {
                        if self
                            .sidefile((tid, attr))
                            .append(SideOp::Insert { key, rid })
                            .is_err()
                        {
                            // Quiesced under our feet; the gate flips online
                            // momentarily — install directly.
                            index.tree.insert(key, rid)?;
                        }
                    }
                    IndexState::OfflineDirect => {
                        index.tree.insert(key, rid)?;
                        self.undeletable.lock().insert((attr, key, rid));
                    }
                }
            }
            return Ok(rid);
        }
    }

    /// Updater point delete by probe key. Returns deleted RIDs.
    pub fn delete_row(
        &self,
        txn: TxnId,
        tid: TableId,
        probe_attr: usize,
        key: Key,
    ) -> TxnResult<Vec<Rid>> {
        self.locks.acquire(txn, tid, LockMode::Shared)?;
        // The probe index must be usable as an access path.
        self.gate((tid, probe_attr)).wait_online();
        let mut db = self.db.lock();
        let table = db.table_mut(tid)?;
        let schema = table.schema;
        let rids = table
            .index_on(probe_attr)
            .ok_or(DbError::NoProbeIndex { attr: probe_attr })?
            .tree
            .search(key)?;
        for &rid in &rids {
            let bytes = table.heap.delete(rid)?;
            for h in &mut table.hash_indices {
                h.index.delete(schema.attr_of(&bytes, h.def.attr), rid)?;
            }
            for index in &mut table.indices {
                let attr = index.def.attr;
                let k = schema.attr_of(&bytes, attr);
                match self.gate((tid, attr)).state() {
                    IndexState::Online => {
                        index.tree.delete_one(k, rid)?;
                    }
                    IndexState::OfflineSideFile => {
                        if self
                            .sidefile((tid, attr))
                            .append(SideOp::Delete { key: k, rid })
                            .is_err()
                        {
                            index.tree.delete_one(k, rid)?;
                        }
                    }
                    IndexState::OfflineDirect => {
                        index.tree.delete_one(k, rid)?;
                        self.undeletable.lock().remove(&(attr, k, rid));
                    }
                }
            }
        }
        Ok(rids)
    }

    /// Read tuples by key through the index on `attr` (waits while that
    /// index is offline — "the off-line indices cannot be used as access
    /// paths").
    pub fn read(&self, txn: TxnId, tid: TableId, attr: usize, key: Key) -> TxnResult<Vec<Tuple>> {
        self.locks.acquire(txn, tid, LockMode::Shared)?;
        self.gate((tid, attr)).wait_online();
        let db = self.db.lock();
        let table = db.table(tid)?;
        let rids = table
            .index_on(attr)
            .ok_or(DbError::NoSuchIndex { attr })?
            .tree
            .search(key)?;
        rids.into_iter()
            .map(|rid| {
                Ok(table
                    .schema
                    .decode(&table.heap.get(rid).map_err(DbError::from)?))
            })
            .collect()
    }

    /// Range read `lo..=hi` through the index on `attr`, batch-wise: a
    /// B-link [`RangeCursor`] harvests up to [`RANGE_BATCH`] entries per
    /// db-mutex span and fetches their rows under the *same* span (so a
    /// harvested RID can never dangle), then drops the mutex before the
    /// next batch. Between batches the cursor holds no page pin, so a
    /// [`TxnDb::bulk_delete_live`] chunk — or any updater — may
    /// reorganise the tree under it; the cursor resumes by re-pinning its
    /// remembered leaf and chasing right pointers.
    pub fn range_read(
        &self,
        txn: TxnId,
        tid: TableId,
        attr: usize,
        lo: Key,
        hi: Key,
    ) -> TxnResult<Vec<Tuple>> {
        self.locks.acquire(txn, tid, LockMode::Shared)?;
        self.gate((tid, attr)).wait_online();
        let mut cursor = {
            let db = self.db.lock();
            let table = db.table(tid)?;
            let index = table.index_on(attr).ok_or(DbError::NoSuchIndex { attr })?;
            RangeCursor::new(&index.tree, lo, hi).map_err(DbError::from)?
        };
        let mut out = Vec::new();
        while !cursor.done() {
            let db = self.db.lock();
            let table = db.table(tid)?;
            let index = table.index_on(attr).ok_or(DbError::NoSuchIndex { attr })?;
            let batch = cursor
                .next_batch(&index.tree, RANGE_BATCH)
                .map_err(DbError::from)?;
            for (_, rid) in batch {
                out.push(
                    table
                        .schema
                        .decode(&table.heap.get(rid).map_err(DbError::from)?),
                );
            }
        }
        Ok(out)
    }

    /// Online (chunked) bulk delete: the §3.1 protocol re-cut for live
    /// foreground traffic.
    ///
    /// `D` is sorted once, then processed in chunks of `chunk` keys. Each
    /// chunk runs a *complete* vertical delete over the heap, the probe
    /// index, every unique index, and every hash index inside one short
    /// exclusive span (table lock + db mutex), then releases both so
    /// foreground transactions interleave. Deletes commute — `D` equals
    /// the disjoint union of its chunks — so after every chunk those
    /// structures are exactly the state a smaller bulk delete would have
    /// left, and the probe and unique indices never leave service.
    ///
    /// Non-unique secondary indices go offline for the whole run (their
    /// `⋈̄` only pays off set-oriented) and are caught up in a phase-2
    /// propagation: the accumulated deleted-row stream is applied chunked
    /// and the side-file (in [`PropagationMode::SideFile`]) replayed, as
    /// in [`TxnDb::bulk_delete`].
    ///
    /// The `pacer` governs the run cooperatively: between chunks it is
    /// checked with no locks held (the natural pause point — a parked
    /// deleter stalls no foreground work), and it is installed around each
    /// chunk body so every page-visit loop inside checkpoints too (a pause
    /// landing there parks with zero pinned frames, though it holds the
    /// chunk's locks until resumed). Cancelling stops before the next
    /// chunk; already-deleted chunks are *committed*, so phase-2
    /// propagation for them always completes (it runs under
    /// [`bypass_cancel`]) and the indices come back online consistent —
    /// the statement then fails with `Cancelled` having deleted a prefix
    /// of `D`.
    pub fn bulk_delete_live(
        &self,
        tid: TableId,
        probe_attr: usize,
        d_keys: &[Key],
        mode: PropagationMode,
        chunk: usize,
        pacer: &Pacer,
    ) -> TxnResult<LiveDeleteStats> {
        let _serial = self.bulk_serial.lock();
        let chunk = chunk.max(1);
        let defs = self.index_defs(tid)?;
        if !defs.iter().any(|&(attr, _)| attr == probe_attr) {
            return Err(DbError::NoProbeIndex { attr: probe_attr }.into());
        }
        let (pool, ws_bytes, schema) = {
            let db = self.db.lock();
            (
                db.pool().clone(),
                db.workspace().capacity().max(4096),
                db.table(tid)?.schema,
            )
        };
        let (mut keys, _) = sort_all(pool.clone(), d_keys.iter().copied(), ws_bytes)?;
        keys.dedup();

        let offline_state = match mode {
            PropagationMode::SideFile => IndexState::OfflineSideFile,
            PropagationMode::Direct => IndexState::OfflineDirect,
        };
        let offline_attrs: Vec<usize> = defs
            .iter()
            .filter(|&&(attr, unique)| !unique && attr != probe_attr)
            .map(|&(attr, _)| attr)
            .collect();
        for &attr in &offline_attrs {
            self.sidefile((tid, attr)).reset();
            self.gate((tid, attr)).set(offline_state);
        }

        // Phase 1: one complete vertical delete per chunk, each under its
        // own short exclusive span. Rows accumulate for phase 2 even if a
        // later chunk fails or is cancelled — they are committed.
        let mut deleted_rows: Vec<(Rid, Vec<u8>)> = Vec::new();
        let mut chunks = 0usize;
        let run: TxnResult<()> = (|| {
            for part in keys.chunks(chunk) {
                // Pause point between chunks: no table lock, no db mutex —
                // a parked deleter blocks no foreground transaction.
                pacer.check().map_err(DbError::from)?;
                // One maintenance slice per pause point, paced like the
                // delete itself so a parked campaign parks its upkeep too.
                if let Some(hook) = self.maintenance.lock().as_mut() {
                    let mut db = self.db.lock();
                    hook(&mut db)?;
                }
                let txn = self.begin();
                self.locks.acquire(txn, tid, LockMode::Exclusive)?;
                let chunk_res: TxnResult<()> = (|| {
                    let mut db = self.db.lock();
                    // Deep page-visit loops below checkpoint against this
                    // pacer (leaf walks, heap passes, hash chains, sorts),
                    // so a pause parks mid-chunk at a pin-free point. The
                    // install defers cancellation: probe index, heap, hash
                    // and unique indices must move together, so a cancel
                    // lets the chunk finish and is observed at the next
                    // between-chunk `check` instead.
                    let _pace = pacer.enter_defer_cancel();
                    let table = db.table_mut(tid)?;
                    let probe_idx = table
                        .indices
                        .iter_mut()
                        .find(|i| i.def.attr == probe_attr)
                        .expect("probe index checked above");
                    let deleted_a =
                        bulk_delete_by_keys(&mut probe_idx.tree, part, ReorgPolicy::FreeAtEmpty)?;
                    let (sorted, _) = sort_all(
                        pool.clone(),
                        deleted_a.iter().map(|&(k, r)| ByRid(r, k)),
                        ws_bytes,
                    )?;
                    let rids: Vec<Rid> = sorted.into_iter().map(|b| b.0).collect();
                    let rows = table.heap.bulk_delete_sorted(&rids)?;
                    for h in &mut table.hash_indices {
                        let attr = h.def.attr;
                        for (rid, bytes) in &rows {
                            h.index.delete(schema.attr_of(bytes, attr), *rid)?;
                        }
                    }
                    for index in table
                        .indices
                        .iter_mut()
                        .filter(|i| i.def.unique && i.def.attr != probe_attr)
                    {
                        let attr = index.def.attr;
                        let proj = rows
                            .iter()
                            .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid));
                        let (pairs, _) = sort_all(pool.clone(), proj, ws_bytes)?;
                        bulk_delete_sorted(&mut index.tree, &pairs, ReorgPolicy::FreeAtEmpty)?;
                    }
                    deleted_rows.extend(rows);
                    Ok(())
                })();
                self.locks.release_all(txn);
                chunk_res?;
                chunks += 1;
            }
            Ok(())
        })();

        // Phase 2: propagate the committed deletes to the offline indices,
        // chunked so no db-mutex span outlasts a chunk's worth of work.
        // This tail is obligated — the heap rows are gone — so it runs
        // under `bypass_cancel`: a cancelled or failed run still brings
        // every index back online consistent with the prefix it deleted.
        let cleanup: TxnResult<()> = bypass_cancel(|| {
            for &attr in &offline_attrs {
                let proj: Vec<(Key, Rid)> = {
                    let undeletable = self.undeletable.lock();
                    deleted_rows
                        .iter()
                        .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid))
                        .filter(|&(k, r)| !undeletable.contains(&(attr, k, r)))
                        .collect()
                };
                let (pairs, _) = sort_all(pool.clone(), proj, ws_bytes)?;
                for part in pairs.chunks(chunk.max(CATCHUP_BATCH)) {
                    let mut db = self.db.lock();
                    let table = db.table_mut(tid)?;
                    let index = table.index_on_mut(attr).expect("index present");
                    bulk_delete_sorted(&mut index.tree, part, ReorgPolicy::FreeAtEmpty)?;
                }
                match mode {
                    PropagationMode::SideFile => {
                        let sf = self.sidefile((tid, attr));
                        loop {
                            let batch = sf.drain_batch(CATCHUP_BATCH);
                            let done = batch.len() < CATCHUP_BATCH;
                            if !batch.is_empty() {
                                let mut db = self.db.lock();
                                let table = db.table_mut(tid)?;
                                let index = table.index_on_mut(attr).expect("index present");
                                apply_ops(&mut index.tree, &batch)?;
                            }
                            if done {
                                break;
                            }
                        }
                        let tail = sf.quiesce_and_drain();
                        {
                            let mut db = self.db.lock();
                            let table = db.table_mut(tid)?;
                            let index = table.index_on_mut(attr).expect("index present");
                            apply_ops(&mut index.tree, &tail)?;
                        }
                        self.gate((tid, attr)).set(IndexState::Online);
                        sf.reset();
                    }
                    PropagationMode::Direct => {
                        self.undeletable.lock().retain(|&(a, _, _)| a != attr);
                        self.gate((tid, attr)).set(IndexState::Online);
                    }
                }
            }
            Ok(())
        });
        // Safety sweep: no gate may stay offline past this point, or
        // foreground waiters hang forever.
        for &attr in &offline_attrs {
            self.gate((tid, attr)).set(IndexState::Online);
        }
        run?;
        cleanup?;
        Ok(LiveDeleteStats {
            deleted: deleted_rows.len(),
            chunks,
        })
    }

    /// Concurrent bulk delete following the §3.1 protocol. Blocks until
    /// every index is back online. Returns the number of deleted records.
    pub fn bulk_delete(
        &self,
        tid: TableId,
        probe_attr: usize,
        d_keys: &[Key],
        mode: PropagationMode,
    ) -> TxnResult<usize> {
        let _serial = self.bulk_serial.lock();
        let txn = self.begin();
        self.locks.acquire(txn, tid, LockMode::Exclusive)?;

        let defs = self.index_defs(tid)?;
        if !defs.iter().any(|&(attr, _)| attr == probe_attr) {
            self.locks.release_all(txn);
            return Err(DbError::NoProbeIndex { attr: probe_attr }.into());
        }
        let offline_state = match mode {
            PropagationMode::SideFile => IndexState::OfflineSideFile,
            PropagationMode::Direct => IndexState::OfflineDirect,
        };
        for &(attr, _) in &defs {
            self.sidefile((tid, attr)).reset();
            self.gate((tid, attr)).set(offline_state);
        }

        // Phase 1 (under the table X lock): table, probe index, unique
        // indices.
        let deleted_rows: Vec<(Rid, Vec<u8>)>;
        {
            let mut db = self.db.lock();
            let pool = db.pool().clone();
            let ws_bytes = db.workspace().capacity().max(4096);
            let table = db.table_mut(tid)?;
            let schema = table.schema;

            let (keys, _) = sort_all(pool.clone(), d_keys.iter().copied(), ws_bytes)?;
            let probe_idx = table
                .indices
                .iter_mut()
                .find(|i| i.def.attr == probe_attr)
                .expect("probe index checked above");
            let deleted_a =
                bulk_delete_by_keys(&mut probe_idx.tree, &keys, ReorgPolicy::FreeAtEmpty)?;
            let (sorted, _) = sort_all(
                pool.clone(),
                deleted_a.iter().map(|&(k, r)| ByRid(r, k)),
                ws_bytes,
            )?;
            let rids: Vec<Rid> = sorted.into_iter().map(|b| b.0).collect();
            deleted_rows = table.heap.bulk_delete_sorted(&rids)?;
            // Hash indices are maintained the traditional way, inside the
            // exclusive phase (no side-file machinery for them).
            for h in &mut table.hash_indices {
                let attr = h.def.attr;
                for (rid, bytes) in &deleted_rows {
                    h.index.delete(schema.attr_of(bytes, attr), *rid)?;
                }
            }

            // Unique indices first (§3.1.3).
            for index in table
                .indices
                .iter_mut()
                .filter(|i| i.def.unique && i.def.attr != probe_attr)
            {
                let attr = index.def.attr;
                let proj = deleted_rows
                    .iter()
                    .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid));
                let (pairs, _) = sort_all(pool.clone(), proj, ws_bytes)?;
                bulk_delete_sorted(&mut index.tree, &pairs, ReorgPolicy::FreeAtEmpty)?;
            }
        }

        // Commit point: probe + unique indices online, table lock released.
        for &(attr, unique) in &defs {
            if unique || attr == probe_attr {
                self.gate((tid, attr)).set(IndexState::Online);
            }
        }
        self.locks.release_all(txn);

        // Phase 2: propagate to the non-unique indices while updaters run.
        for &(attr, unique) in &defs {
            if unique || attr == probe_attr {
                continue;
            }
            {
                let mut db = self.db.lock();
                let pool = db.pool().clone();
                let ws_bytes = db.workspace().capacity().max(4096);
                let table = db.table_mut(tid)?;
                let schema = table.schema;
                let proj: Vec<(Key, Rid)> = {
                    let undeletable = self.undeletable.lock();
                    deleted_rows
                        .iter()
                        .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid))
                        .filter(|&(k, r)| !undeletable.contains(&(attr, k, r)))
                        .collect()
                };
                let (pairs, _) = sort_all(pool, proj, ws_bytes)?;
                let index = table.index_on_mut(attr).expect("index present");
                bulk_delete_sorted(&mut index.tree, &pairs, ReorgPolicy::FreeAtEmpty)?;
            }
            match mode {
                PropagationMode::SideFile => {
                    let sf = self.sidefile((tid, attr));
                    // Catch-up: apply batches while appends continue.
                    loop {
                        let batch = sf.drain_batch(CATCHUP_BATCH);
                        let done = batch.len() < CATCHUP_BATCH;
                        if !batch.is_empty() {
                            let mut db = self.db.lock();
                            let table = db.table_mut(tid)?;
                            let index = table.index_on_mut(attr).expect("index present");
                            apply_ops(&mut index.tree, &batch)?;
                        }
                        if done {
                            break;
                        }
                    }
                    // Quiesce and drain the tail, then go online.
                    let tail = sf.quiesce_and_drain();
                    {
                        let mut db = self.db.lock();
                        let table = db.table_mut(tid)?;
                        let index = table.index_on_mut(attr).expect("index present");
                        apply_ops(&mut index.tree, &tail)?;
                    }
                    self.gate((tid, attr)).set(IndexState::Online);
                    sf.reset();
                }
                PropagationMode::Direct => {
                    self.undeletable.lock().retain(|&(a, _, _)| a != attr);
                    self.gate((tid, attr)).set(IndexState::Online);
                }
            }
        }
        Ok(deleted_rows.len())
    }

    /// Online erasure campaign: the cascading delete closure of
    /// `DELETE FROM root WHERE attr IN d_keys`, executed live.
    ///
    /// The cascade is planned read-only up front over the registered
    /// foreign keys ([`bd_core::plan_cascade`]): a RESTRICT violation
    /// aborts *here* — before any index goes offline, with zero pinned
    /// frames and no destructive work, exactly the §2.2 "no work needs to
    /// be undone" contract. Each CASCADE step then runs children-first
    /// through [`TxnDb::bulk_delete_live`], so foreground transactions
    /// interleave with the campaign between every chunk of every step.
    ///
    /// The `pacer` governs the whole campaign: a cancel is observed at
    /// some step's between-chunk gate and stops the campaign with a
    /// consistent, already-committed prefix (whole chunks of whole steps;
    /// every index back online). A completed campaign finishes with the
    /// obligated erasure tail under [`bypass_cancel`]: a whole-database
    /// physical scrub and a [`bd_core::verify_erasure`] proof against the
    /// sensitive values captured before the first delete.
    pub fn erase_cascade_live(
        &self,
        root: TableId,
        attr: usize,
        d_keys: &[Key],
        mode: PropagationMode,
        chunk: usize,
        pacer: &Pacer,
    ) -> TxnResult<LiveCampaignStats> {
        let (plan, sensitive) = {
            let db = self.db.lock();
            let plan = bd_core::plan_cascade(&db, root, attr, d_keys)?;
            let sensitive = bd_core::collect_sensitive(&db, &plan)?;
            (plan, sensitive)
        };
        let mut steps = Vec::with_capacity(plan.steps.len());
        let mut deleted = 0usize;
        for step in &plan.steps {
            let s = self.bulk_delete_live(step.table, step.attr, &step.keys, mode, chunk, pacer)?;
            deleted += s.deleted;
            steps.push(s);
        }
        let (scrub, report) = bypass_cancel(|| -> TxnResult<_> {
            let mut db = self.db.lock();
            let scrub = bd_core::scrub_database(&mut db)?;
            let report = bd_core::verify_erasure(&db, &sensitive, &[])?;
            Ok((scrub, report))
        })?;
        Ok(LiveCampaignStats {
            steps,
            deleted,
            scrub,
            report,
        })
    }
}
