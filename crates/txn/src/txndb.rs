//! Concurrent database wrapper: bulk deletes running alongside updater
//! transactions, per the protocol of §3.1.
//!
//! Timeline of [`TxnDb::bulk_delete`]:
//!
//! 1. acquire the **exclusive table lock**, switch every index offline;
//! 2. process the base table, the probe index, and all **unique indices**
//!    (unique first, so the constraint stays checkable);
//! 3. commit: release the table lock, bring probe + unique indices online —
//!    "As soon as table R and all unique indices are processed ... the lock
//!    on R is released and the unique indices are brought on-line";
//! 4. propagate deletions to the remaining indices while updaters run,
//!    capturing their changes per [`PropagationMode`]:
//!    * **side-file** — updater changes are logged and replayed; appends
//!      continue during catch-up; a final quiesce drains the tail;
//!    * **direct** — updaters install changes into the offline tree
//!      directly, marking inserted entries *undeletable* so the bulk
//!      deleter cannot remove a re-used `(key, RID)`.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use bd_btree::{bulk_delete_by_keys, bulk_delete_sorted, Key, ReorgPolicy};
use bd_core::{Database, DbError, DbResult, TableId, Tuple};
use bd_exec::{sort_all, ByRid};
use bd_storage::Rid;

use crate::error::TxnResult;
use crate::gate::{IndexGate, IndexState};
use crate::lock::{LockManager, LockMode, TxnId};
use crate::sidefile::{apply_ops, SideFile, SideOp};

/// How updater changes reach offline indices (§3.1.1 vs §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationMode {
    /// Log updater changes to side-files, replay before going online.
    SideFile,
    /// Install updater changes directly with undeletable marks.
    Direct,
}

/// Batch size for side-file catch-up; below this the side-file is
/// quiesced and drained ("when nearly the whole side-file is processed").
const CATCHUP_BATCH: usize = 64;

type IndexKey = (TableId, usize);

/// Thread-safe database with the §3.1 bulk-delete protocol.
pub struct TxnDb {
    db: Mutex<Database>,
    locks: LockManager,
    gates: Mutex<HashMap<IndexKey, Arc<IndexGate>>>,
    sidefiles: Mutex<HashMap<IndexKey, Arc<SideFile>>>,
    undeletable: Mutex<HashSet<(usize, Key, Rid)>>,
    /// Serializes whole bulk-delete operations: a second bulk delete must
    /// not take indices offline while the first is still propagating.
    bulk_serial: Mutex<()>,
    next_txn: AtomicU64,
}

impl TxnDb {
    /// Wrap a database for concurrent use.
    pub fn new(db: Database) -> Arc<Self> {
        Arc::new(TxnDb {
            db: Mutex::new(db),
            locks: LockManager::default(),
            gates: Mutex::new(HashMap::new()),
            sidefiles: Mutex::new(HashMap::new()),
            undeletable: Mutex::new(HashSet::new()),
            bulk_serial: Mutex::new(()),
            next_txn: AtomicU64::new(1),
        })
    }

    /// Run setup/inspection code against the underlying database.
    pub fn with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.lock())
    }

    /// Start a transaction.
    pub fn begin(&self) -> TxnId {
        self.next_txn.fetch_add(1, Ordering::Relaxed)
    }

    /// Commit: release all locks.
    pub fn commit(&self, txn: TxnId) {
        self.locks.release_all(txn);
    }

    fn gate(&self, key: IndexKey) -> Arc<IndexGate> {
        self.gates.lock().entry(key).or_default().clone()
    }

    fn sidefile(&self, key: IndexKey) -> Arc<SideFile> {
        self.sidefiles.lock().entry(key).or_default().clone()
    }

    fn index_defs(&self, tid: TableId) -> DbResult<Vec<(usize, bool)>> {
        let db = self.db.lock();
        Ok(db
            .table(tid)?
            .indices
            .iter()
            .map(|i| (i.def.attr, i.def.unique))
            .collect())
    }

    /// Updater insert: waits for unique indices, routes changes to offline
    /// non-unique indices via side-file or direct propagation.
    pub fn insert(&self, txn: TxnId, tid: TableId, tuple: &Tuple) -> TxnResult<Rid> {
        self.locks.acquire(txn, tid, LockMode::Shared)?;
        'retry: loop {
            let defs = self.index_defs(tid)?;
            // Unique indices must be online for the constraint check.
            for &(attr, unique) in &defs {
                if unique {
                    self.gate((tid, attr)).wait_online();
                }
            }
            let mut db = self.db.lock();
            let table = db.table_mut(tid)?;
            let bytes = table.schema.encode(tuple)?;
            for index in &table.indices {
                if index.def.unique {
                    if !self.gate((tid, index.def.attr)).is_online() {
                        // Went offline between the wait and the lock: retry.
                        drop(db);
                        continue 'retry;
                    }
                    let key = tuple.attr(index.def.attr);
                    if !index.tree.search(key)?.is_empty() {
                        return Err(DbError::DuplicateKey {
                            attr: index.def.attr,
                            key,
                        }
                        .into());
                    }
                }
            }
            let rid = table.heap.insert(&bytes)?;
            let schema = table.schema;
            for h in &mut table.hash_indices {
                h.index.insert(schema.attr_of(&bytes, h.def.attr), rid)?;
            }
            for index in &mut table.indices {
                let attr = index.def.attr;
                let key = schema.attr_of(&bytes, attr);
                match self.gate((tid, attr)).state() {
                    IndexState::Online => index.tree.insert(key, rid)?,
                    IndexState::OfflineSideFile => {
                        if self
                            .sidefile((tid, attr))
                            .append(SideOp::Insert { key, rid })
                            .is_err()
                        {
                            // Quiesced under our feet; the gate flips online
                            // momentarily — install directly.
                            index.tree.insert(key, rid)?;
                        }
                    }
                    IndexState::OfflineDirect => {
                        index.tree.insert(key, rid)?;
                        self.undeletable.lock().insert((attr, key, rid));
                    }
                }
            }
            return Ok(rid);
        }
    }

    /// Updater point delete by probe key. Returns deleted RIDs.
    pub fn delete_row(
        &self,
        txn: TxnId,
        tid: TableId,
        probe_attr: usize,
        key: Key,
    ) -> TxnResult<Vec<Rid>> {
        self.locks.acquire(txn, tid, LockMode::Shared)?;
        // The probe index must be usable as an access path.
        self.gate((tid, probe_attr)).wait_online();
        let mut db = self.db.lock();
        let table = db.table_mut(tid)?;
        let schema = table.schema;
        let rids = table
            .index_on(probe_attr)
            .ok_or(DbError::NoProbeIndex { attr: probe_attr })?
            .tree
            .search(key)?;
        for &rid in &rids {
            let bytes = table.heap.delete(rid)?;
            for h in &mut table.hash_indices {
                h.index.delete(schema.attr_of(&bytes, h.def.attr), rid)?;
            }
            for index in &mut table.indices {
                let attr = index.def.attr;
                let k = schema.attr_of(&bytes, attr);
                match self.gate((tid, attr)).state() {
                    IndexState::Online => {
                        index.tree.delete_one(k, rid)?;
                    }
                    IndexState::OfflineSideFile => {
                        if self
                            .sidefile((tid, attr))
                            .append(SideOp::Delete { key: k, rid })
                            .is_err()
                        {
                            index.tree.delete_one(k, rid)?;
                        }
                    }
                    IndexState::OfflineDirect => {
                        index.tree.delete_one(k, rid)?;
                        self.undeletable.lock().remove(&(attr, k, rid));
                    }
                }
            }
        }
        Ok(rids)
    }

    /// Read tuples by key through the index on `attr` (waits while that
    /// index is offline — "the off-line indices cannot be used as access
    /// paths").
    pub fn read(&self, txn: TxnId, tid: TableId, attr: usize, key: Key) -> TxnResult<Vec<Tuple>> {
        self.locks.acquire(txn, tid, LockMode::Shared)?;
        self.gate((tid, attr)).wait_online();
        let db = self.db.lock();
        let table = db.table(tid)?;
        let rids = table
            .index_on(attr)
            .ok_or(DbError::NoSuchIndex { attr })?
            .tree
            .search(key)?;
        rids.into_iter()
            .map(|rid| {
                Ok(table
                    .schema
                    .decode(&table.heap.get(rid).map_err(DbError::from)?))
            })
            .collect()
    }

    /// Concurrent bulk delete following the §3.1 protocol. Blocks until
    /// every index is back online. Returns the number of deleted records.
    pub fn bulk_delete(
        &self,
        tid: TableId,
        probe_attr: usize,
        d_keys: &[Key],
        mode: PropagationMode,
    ) -> TxnResult<usize> {
        let _serial = self.bulk_serial.lock();
        let txn = self.begin();
        self.locks.acquire(txn, tid, LockMode::Exclusive)?;

        let defs = self.index_defs(tid)?;
        if !defs.iter().any(|&(attr, _)| attr == probe_attr) {
            self.locks.release_all(txn);
            return Err(DbError::NoProbeIndex { attr: probe_attr }.into());
        }
        let offline_state = match mode {
            PropagationMode::SideFile => IndexState::OfflineSideFile,
            PropagationMode::Direct => IndexState::OfflineDirect,
        };
        for &(attr, _) in &defs {
            self.sidefile((tid, attr)).reset();
            self.gate((tid, attr)).set(offline_state);
        }

        // Phase 1 (under the table X lock): table, probe index, unique
        // indices.
        let deleted_rows: Vec<(Rid, Vec<u8>)>;
        {
            let mut db = self.db.lock();
            let pool = db.pool().clone();
            let ws_bytes = db.workspace().capacity().max(4096);
            let table = db.table_mut(tid)?;
            let schema = table.schema;

            let (keys, _) = sort_all(pool.clone(), d_keys.iter().copied(), ws_bytes)?;
            let probe_idx = table
                .indices
                .iter_mut()
                .find(|i| i.def.attr == probe_attr)
                .expect("probe index checked above");
            let deleted_a =
                bulk_delete_by_keys(&mut probe_idx.tree, &keys, ReorgPolicy::FreeAtEmpty)?;
            let (sorted, _) = sort_all(
                pool.clone(),
                deleted_a.iter().map(|&(k, r)| ByRid(r, k)),
                ws_bytes,
            )?;
            let rids: Vec<Rid> = sorted.into_iter().map(|b| b.0).collect();
            deleted_rows = table.heap.bulk_delete_sorted(&rids)?;
            // Hash indices are maintained the traditional way, inside the
            // exclusive phase (no side-file machinery for them).
            for h in &mut table.hash_indices {
                let attr = h.def.attr;
                for (rid, bytes) in &deleted_rows {
                    h.index.delete(schema.attr_of(bytes, attr), *rid)?;
                }
            }

            // Unique indices first (§3.1.3).
            for index in table
                .indices
                .iter_mut()
                .filter(|i| i.def.unique && i.def.attr != probe_attr)
            {
                let attr = index.def.attr;
                let proj = deleted_rows
                    .iter()
                    .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid));
                let (pairs, _) = sort_all(pool.clone(), proj, ws_bytes)?;
                bulk_delete_sorted(&mut index.tree, &pairs, ReorgPolicy::FreeAtEmpty)?;
            }
        }

        // Commit point: probe + unique indices online, table lock released.
        for &(attr, unique) in &defs {
            if unique || attr == probe_attr {
                self.gate((tid, attr)).set(IndexState::Online);
            }
        }
        self.locks.release_all(txn);

        // Phase 2: propagate to the non-unique indices while updaters run.
        for &(attr, unique) in &defs {
            if unique || attr == probe_attr {
                continue;
            }
            {
                let mut db = self.db.lock();
                let pool = db.pool().clone();
                let ws_bytes = db.workspace().capacity().max(4096);
                let table = db.table_mut(tid)?;
                let schema = table.schema;
                let proj: Vec<(Key, Rid)> = {
                    let undeletable = self.undeletable.lock();
                    deleted_rows
                        .iter()
                        .map(|(rid, bytes)| (schema.attr_of(bytes, attr), *rid))
                        .filter(|&(k, r)| !undeletable.contains(&(attr, k, r)))
                        .collect()
                };
                let (pairs, _) = sort_all(pool, proj, ws_bytes)?;
                let index = table.index_on_mut(attr).expect("index present");
                bulk_delete_sorted(&mut index.tree, &pairs, ReorgPolicy::FreeAtEmpty)?;
            }
            match mode {
                PropagationMode::SideFile => {
                    let sf = self.sidefile((tid, attr));
                    // Catch-up: apply batches while appends continue.
                    loop {
                        let batch = sf.drain_batch(CATCHUP_BATCH);
                        let done = batch.len() < CATCHUP_BATCH;
                        if !batch.is_empty() {
                            let mut db = self.db.lock();
                            let table = db.table_mut(tid)?;
                            let index = table.index_on_mut(attr).expect("index present");
                            apply_ops(&mut index.tree, &batch)?;
                        }
                        if done {
                            break;
                        }
                    }
                    // Quiesce and drain the tail, then go online.
                    let tail = sf.quiesce_and_drain();
                    {
                        let mut db = self.db.lock();
                        let table = db.table_mut(tid)?;
                        let index = table.index_on_mut(attr).expect("index present");
                        apply_ops(&mut index.tree, &tail)?;
                    }
                    self.gate((tid, attr)).set(IndexState::Online);
                    sf.reset();
                }
                PropagationMode::Direct => {
                    self.undeletable.lock().retain(|&(a, _, _)| a != attr);
                    self.gate((tid, attr)).set(IndexState::Online);
                }
            }
        }
        Ok(deleted_rows.len())
    }
}
