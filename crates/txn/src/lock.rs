//! Table-level lock manager.
//!
//! The paper argues fine-grained locking is pointless for bulk deletes:
//! "database systems employing lock escalation would switch to an exclusive
//! lock on the base table, anyway. ... Therefore, our bulk deletion process
//! locks table R exclusively" (§3.1). This manager provides shared /
//! exclusive table locks with writer priority (a parked exclusive request
//! blocks new shared grants, so a stream of readers cannot starve the
//! bulk deleter) and timeout-based deadlock resolution.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Transaction identifier.
pub type TxnId = u64;

/// Lockable resource (table id).
pub type ResourceId = usize;

/// Requested lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (readers, record-level updaters outside bulk deletion).
    Shared,
    /// Exclusive (the bulk deleter's table lock).
    Exclusive,
}

/// Lock acquisition failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The wait exceeded the timeout (deadlock suspicion).
    Timeout {
        /// Waiting transaction.
        txn: TxnId,
        /// Contested resource.
        resource: ResourceId,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout { txn, resource } => {
                write!(f, "txn {txn} timed out waiting for resource {resource}")
            }
        }
    }
}

impl std::error::Error for LockError {}

#[derive(Default)]
struct LockState {
    sharers: Vec<TxnId>,
    exclusive: Option<TxnId>,
    /// Exclusive requesters currently parked on this resource. A *new*
    /// shared request is held back while this is non-empty (writer
    /// priority): without it a continuous stream of readers starves the
    /// bulk deleter's table lock indefinitely. Re-acquisition by an
    /// existing holder stays compatible so readers already in can finish.
    waiting_exclusive: Vec<TxnId>,
}

impl LockState {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => {
                (self.exclusive.is_none() || self.exclusive == Some(txn))
                    && (self.waiting_exclusive.is_empty()
                        || self.sharers.contains(&txn)
                        || self.exclusive == Some(txn))
            }
            LockMode::Exclusive => {
                (self.exclusive.is_none() || self.exclusive == Some(txn))
                    && self.sharers.iter().all(|&t| t == txn)
            }
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                if !self.sharers.contains(&txn) {
                    self.sharers.push(txn);
                }
            }
            LockMode::Exclusive => self.exclusive = Some(txn),
        }
    }
}

/// Shared/exclusive lock table.
pub struct LockManager {
    table: Mutex<HashMap<ResourceId, LockState>>,
    cv: Condvar,
    timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_secs(10))
    }
}

impl LockManager {
    /// Manager whose waits give up after `timeout`.
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            table: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            timeout,
        }
    }

    /// Acquire `mode` on `resource` for `txn`, blocking until granted or
    /// timed out. Re-acquisition and shared→exclusive upgrade (when `txn`
    /// is the only holder) are supported.
    pub fn acquire(
        &self,
        txn: TxnId,
        resource: ResourceId,
        mode: LockMode,
    ) -> Result<(), LockError> {
        let deadline = Instant::now() + self.timeout;
        let mut table = self.table.lock();
        let mut registered = false;
        loop {
            let state = table.entry(resource).or_default();
            if state.compatible(txn, mode) {
                if registered {
                    state.waiting_exclusive.retain(|&t| t != txn);
                }
                state.grant(txn, mode);
                // Waking sharers parked behind this txn's own (now
                // satisfied) exclusive registration.
                self.cv.notify_all();
                return Ok(());
            }
            if mode == LockMode::Exclusive && !registered {
                state.waiting_exclusive.push(txn);
                registered = true;
            }
            if self.cv.wait_until(&mut table, deadline).timed_out() {
                if registered {
                    if let Some(state) = table.get_mut(&resource) {
                        state.waiting_exclusive.retain(|&t| t != txn);
                    }
                    self.cv.notify_all();
                }
                return Err(LockError::Timeout { txn, resource });
            }
        }
    }

    /// Release everything `txn` holds on `resource`.
    pub fn release(&self, txn: TxnId, resource: ResourceId) {
        let mut table = self.table.lock();
        if let Some(state) = table.get_mut(&resource) {
            state.sharers.retain(|&t| t != txn);
            if state.exclusive == Some(txn) {
                state.exclusive = None;
            }
        }
        self.cv.notify_all();
    }

    /// Release everything `txn` holds anywhere (transaction end).
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.table.lock();
        for state in table.values_mut() {
            state.sharers.retain(|&t| t != txn);
            if state.exclusive == Some(txn) {
                state.exclusive = None;
            }
        }
        self.cv.notify_all();
    }

    /// True if `txn` holds an exclusive lock on `resource`.
    pub fn holds_exclusive(&self, txn: TxnId, resource: ResourceId) -> bool {
        self.table
            .lock()
            .get(&resource)
            .map(|s| s.exclusive == Some(txn))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::default();
        lm.acquire(1, 0, LockMode::Shared).unwrap();
        lm.acquire(2, 0, LockMode::Shared).unwrap();
        lm.release_all(1);
        lm.release_all(2);
    }

    #[test]
    fn exclusive_excludes_shared() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.acquire(1, 0, LockMode::Exclusive).unwrap();
        assert!(matches!(
            lm.acquire(2, 0, LockMode::Shared),
            Err(LockError::Timeout { txn: 2, .. })
        ));
        lm.release(1, 0);
        lm.acquire(2, 0, LockMode::Shared).unwrap();
    }

    #[test]
    fn reacquire_and_upgrade() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.acquire(1, 0, LockMode::Shared).unwrap();
        // Sole sharer may upgrade.
        lm.acquire(1, 0, LockMode::Exclusive).unwrap();
        assert!(lm.holds_exclusive(1, 0));
        // Exclusive holder may re-acquire shared.
        lm.acquire(1, 0, LockMode::Shared).unwrap();
    }

    #[test]
    fn upgrade_blocked_by_other_sharer() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.acquire(1, 0, LockMode::Shared).unwrap();
        lm.acquire(2, 0, LockMode::Shared).unwrap();
        assert!(lm.acquire(1, 0, LockMode::Exclusive).is_err());
    }

    #[test]
    fn waiting_thread_wakes_on_release() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        lm.acquire(1, 7, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || lm2.acquire(2, 7, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(20));
        lm.release(1, 7);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn locks_are_per_resource() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.acquire(1, 0, LockMode::Exclusive).unwrap();
        lm.acquire(2, 1, LockMode::Exclusive).unwrap();
    }

    /// Writer priority: a continuous stream of short shared holders must
    /// not starve a parked exclusive request — new sharers queue behind it.
    #[test]
    fn reader_stream_cannot_starve_an_exclusive_waiter() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let lm = Arc::new(LockManager::new(Duration::from_secs(5)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for t in 0..3u64 {
            let lm = lm.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut txn = 100 + t * 1000;
                while !stop.load(Ordering::Acquire) {
                    lm.acquire(txn, 0, LockMode::Shared).unwrap();
                    lm.release_all(txn);
                    txn += 1;
                }
            }));
        }
        // Let the reader stream saturate the resource, then demand it.
        std::thread::sleep(Duration::from_millis(30));
        let granted = lm.acquire(1, 0, LockMode::Exclusive);
        stop.store(true, Ordering::Release);
        let still_holding = lm.holds_exclusive(1, 0);
        lm.release_all(1);
        for r in readers {
            r.join().unwrap();
        }
        granted.expect("exclusive request starved by readers");
        assert!(still_holding);
    }

    /// A sharer already admitted before the exclusive request queued can
    /// re-acquire (it is not deadlocked by the writer-priority gate), and
    /// the waiter's registration is withdrawn on timeout so later sharers
    /// proceed.
    #[test]
    fn writer_priority_allows_existing_sharers_and_clears_on_timeout() {
        let lm = Arc::new(LockManager::new(Duration::from_millis(80)));
        lm.acquire(1, 0, LockMode::Shared).unwrap();
        let lm2 = lm.clone();
        let waiter = std::thread::spawn(move || lm2.acquire(2, 0, LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(20));
        // Existing holder passes the gate; a newcomer blocks behind the
        // parked writer and is admitted only once the writer withdraws
        // (txn 1 never releases, so the waiter times out at ~80 ms).
        lm.acquire(1, 0, LockMode::Shared).unwrap();
        let t0 = Instant::now();
        lm.acquire(3, 0, LockMode::Shared).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(30),
            "newcomer sharer jumped the writer-priority gate"
        );
        assert!(waiter.join().unwrap().is_err());
    }
}
