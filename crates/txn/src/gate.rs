//! Per-index online/offline gates.
//!
//! During a concurrent bulk delete the bulk deleter "switches all indices
//! on R off-line"; unique indices come back "as soon as table R and all
//! unique indices are processed", non-unique indices stay offline while
//! deletions propagate (§3.1). Updaters consult the gate to decide whether
//! to touch the tree directly, log to a side-file, or (for unique indices)
//! wait.

use parking_lot::{Condvar, Mutex};

/// Visibility state of one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexState {
    /// Normal operation: updaters modify the tree directly.
    Online,
    /// Offline; updater changes are captured in a side-file (§3.1.1).
    OfflineSideFile,
    /// Offline; updater changes are installed directly under latches with
    /// undeletable marks (§3.1.2).
    OfflineDirect,
}

/// Gate guarding one index's state, with blocking waits for online.
pub struct IndexGate {
    state: Mutex<IndexState>,
    cv: Condvar,
}

impl Default for IndexGate {
    fn default() -> Self {
        IndexGate {
            state: Mutex::new(IndexState::Online),
            cv: Condvar::new(),
        }
    }
}

impl IndexGate {
    /// Current state.
    pub fn state(&self) -> IndexState {
        *self.state.lock()
    }

    /// Transition to `new`. Waking any waiters when going online.
    pub fn set(&self, new: IndexState) {
        *self.state.lock() = new;
        if new == IndexState::Online {
            self.cv.notify_all();
        }
    }

    /// Block until the index is online (used by updaters that must consult
    /// a unique index and "cannot proceed while the unique index is
    /// off-line").
    pub fn wait_online(&self) {
        let mut s = self.state.lock();
        while *s != IndexState::Online {
            self.cv.wait(&mut s);
        }
    }

    /// True if online.
    pub fn is_online(&self) -> bool {
        self.state() == IndexState::Online
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn default_is_online() {
        let g = IndexGate::default();
        assert!(g.is_online());
    }

    #[test]
    fn wait_online_blocks_until_set() {
        let g = Arc::new(IndexGate::default());
        g.set(IndexState::OfflineSideFile);
        let g2 = g.clone();
        let h = std::thread::spawn(move || {
            g2.wait_online();
            true
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!h.is_finished(), "waiter must block while offline");
        g.set(IndexState::Online);
        assert!(h.join().unwrap());
    }

    #[test]
    fn state_transitions() {
        let g = IndexGate::default();
        g.set(IndexState::OfflineDirect);
        assert_eq!(g.state(), IndexState::OfflineDirect);
        g.set(IndexState::Online);
        assert!(g.is_online());
    }
}
