//! Side-files: change capture for offline indices (§3.1.1).
//!
//! "All changes made to this indices by a updater transaction are logged in
//! side-files (one for each index). When the bulk deletion has processed an
//! index the side-file is applied to the index but still the index is
//! off-line and still other transactions can append the side-file. When
//! nearly the whole side-file is processed, the bulk deletion quiesces all
//! updates to the index, processes the last entries of the side-file and
//! brings the index on-line again."

use parking_lot::Mutex;

use bd_btree::{BTree, Key};
use bd_storage::{Rid, StorageResult};

/// One captured index change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideOp {
    /// An entry the updater inserted.
    Insert {
        /// Index key.
        key: Key,
        /// Record id.
        rid: Rid,
    },
    /// An entry the updater deleted.
    Delete {
        /// Index key.
        key: Key,
        /// Record id.
        rid: Rid,
    },
}

/// Error appending to a quiesced side-file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quiesced;

impl std::fmt::Display for Quiesced {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "side-file is quiesced; no further appends accepted")
    }
}

impl std::error::Error for Quiesced {}

#[derive(Default)]
struct Inner {
    ops: Vec<SideOp>,
    quiesced: bool,
}

/// Append-only change log for one offline index.
#[derive(Default)]
pub struct SideFile {
    inner: Mutex<Inner>,
}

impl SideFile {
    /// Record a change (fails after quiesce — callers must then wait for
    /// the index to come online and apply directly).
    pub fn append(&self, op: SideOp) -> Result<(), Quiesced> {
        let mut inner = self.inner.lock();
        if inner.quiesced {
            return Err(Quiesced);
        }
        inner.ops.push(op);
        Ok(())
    }

    /// Number of pending operations.
    pub fn len(&self) -> usize {
        self.inner.lock().ops.len()
    }

    /// True if no operations are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take up to `max` operations for application (appends may continue).
    pub fn drain_batch(&self, max: usize) -> Vec<SideOp> {
        let mut inner = self.inner.lock();
        let take = max.min(inner.ops.len());
        inner.ops.drain(..take).collect()
    }

    /// Quiesce: reject further appends and take whatever is left.
    pub fn quiesce_and_drain(&self) -> Vec<SideOp> {
        let mut inner = self.inner.lock();
        inner.quiesced = true;
        std::mem::take(&mut inner.ops)
    }

    /// Reopen after the index went back online (for reuse in tests).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.quiesced = false;
        inner.ops.clear();
    }
}

/// Apply a batch of side operations to a tree in log order.
pub fn apply_ops(tree: &mut BTree, ops: &[SideOp]) -> StorageResult<()> {
    for op in ops {
        match *op {
            SideOp::Insert { key, rid } => tree.insert(key, rid)?,
            SideOp::Delete { key, rid } => {
                tree.delete_one(key, rid)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_btree::BTreeConfig;
    use bd_storage::{BufferPool, CostModel, SimDisk, StructureId};

    #[test]
    fn append_drain_order() {
        let sf = SideFile::default();
        for i in 0..10u16 {
            sf.append(SideOp::Insert {
                key: i as Key,
                rid: Rid::new(0, i),
            })
            .unwrap();
        }
        assert_eq!(sf.len(), 10);
        let batch = sf.drain_batch(4);
        assert_eq!(batch.len(), 4);
        assert!(matches!(batch[0], SideOp::Insert { key: 0, .. }));
        assert_eq!(sf.len(), 6);
    }

    #[test]
    fn quiesce_rejects_appends() {
        let sf = SideFile::default();
        sf.append(SideOp::Delete {
            key: 1,
            rid: Rid::new(0, 0),
        })
        .unwrap();
        let rest = sf.quiesce_and_drain();
        assert_eq!(rest.len(), 1);
        assert_eq!(
            sf.append(SideOp::Insert {
                key: 2,
                rid: Rid::new(0, 1)
            }),
            Err(Quiesced)
        );
        sf.reset();
        sf.append(SideOp::Insert {
            key: 2,
            rid: Rid::new(0, 1),
        })
        .unwrap();
    }

    #[test]
    fn apply_ops_replays_inserts_and_deletes() {
        let pool = BufferPool::new(SimDisk::new(CostModel::default()), 64);
        let mut tree =
            BTree::create(pool, BTreeConfig::with_fanout(8), StructureId::Index(0)).unwrap();
        for k in 0..20u64 {
            tree.insert(k, Rid::new(1, k as u16)).unwrap();
        }
        let ops = vec![
            SideOp::Insert {
                key: 100,
                rid: Rid::new(2, 0),
            },
            SideOp::Delete {
                key: 5,
                rid: Rid::new(1, 5),
            },
            // Insert-then-delete of the same entry nets to nothing.
            SideOp::Insert {
                key: 200,
                rid: Rid::new(2, 1),
            },
            SideOp::Delete {
                key: 200,
                rid: Rid::new(2, 1),
            },
        ];
        apply_ops(&mut tree, &ops).unwrap();
        assert_eq!(tree.search(100).unwrap(), vec![Rid::new(2, 0)]);
        assert_eq!(tree.search(5).unwrap(), Vec::<Rid>::new());
        assert_eq!(tree.search(200).unwrap(), Vec::<Rid>::new());
    }

    #[test]
    fn concurrent_appends_are_safe() {
        let sf = std::sync::Arc::new(SideFile::default());
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let sf = sf.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        sf.append(SideOp::Insert {
                            key: i,
                            rid: Rid::new(t as u32, i as u16),
                        })
                        .unwrap();
                    }
                });
            }
        });
        assert_eq!(sf.len(), 400);
    }
}
