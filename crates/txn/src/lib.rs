#![warn(missing_docs)]

//! Concurrency control for bulk deletes — paper §3.1.
//!
//! "It may still be beneficial to allow concurrent transactions while bulk
//! deletion is still in progress." This crate provides the pieces §3.1
//! describes and an orchestrator that runs them:
//!
//! * [`lock::LockManager`] — shared/exclusive table locks (the bulk deleter
//!   "locks table R exclusively");
//! * [`gate::IndexGate`] — per-index online/offline state;
//! * [`sidefile::SideFile`] — change capture + catch-up + quiesce for
//!   offline indices (§3.1.1, after Mohan & Narang);
//! * direct propagation with *undeletable* entry marks (§3.1.2);
//! * [`txndb::TxnDb`] — the protocol: exclusive phase over table + unique
//!   indices, early commit, background propagation to non-unique indices
//!   while updater transactions run.

pub mod error;
pub mod gate;
pub mod lock;
pub mod sidefile;
pub mod txndb;

pub use error::{TxnError, TxnResult};
pub use gate::{IndexGate, IndexState};
pub use lock::{LockError, LockManager, LockMode, TxnId};
pub use sidefile::{SideFile, SideOp};
pub use txndb::{LiveCampaignStats, LiveDeleteStats, MaintenanceHook, PropagationMode, TxnDb};
