//! Transaction-layer error type.

use std::fmt;

use bd_core::DbError;

use crate::lock::LockError;

/// Errors raised by the concurrent layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// Engine error.
    Db(DbError),
    /// Lock acquisition failure.
    Lock(LockError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Db(e) => write!(f, "{e}"),
            TxnError::Lock(e) => write!(f, "{e}"),
        }
    }
}

impl TxnError {
    /// Whether this is a lock-wait timeout — the retryable contention
    /// outcome (the deadlock-suspicion policy), as opposed to an engine
    /// error.
    pub fn is_lock_timeout(&self) -> bool {
        matches!(self, TxnError::Lock(LockError::Timeout { .. }))
    }
}

impl std::error::Error for TxnError {}

impl From<DbError> for TxnError {
    fn from(e: DbError) -> Self {
        TxnError::Db(e)
    }
}

impl From<bd_storage::StorageError> for TxnError {
    fn from(e: bd_storage::StorageError) -> Self {
        TxnError::Db(DbError::Storage(e))
    }
}

impl From<LockError> for TxnError {
    fn from(e: LockError) -> Self {
        TxnError::Lock(e)
    }
}

/// Convenience alias for the concurrent layer.
pub type TxnResult<T> = Result<T, TxnError>;
