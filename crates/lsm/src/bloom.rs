//! Bloom-style membership filter over a run's keys.
//!
//! Two independent splitmix64-derived probes per key into a bit array
//! sized at build time. No false negatives (checked by the run
//! self-audit); false positives only cost a wasted page read.

use bd_btree::Key;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fixed-size bloom filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u64>,
    n_bits: usize,
}

impl Bloom {
    /// A filter sized for `n_keys` keys at `bits_per_key` bits each.
    pub fn with_capacity(n_keys: usize, bits_per_key: usize) -> Bloom {
        let n_bits = (n_keys * bits_per_key).max(64);
        Bloom {
            bits: vec![0u64; n_bits.div_ceil(64)],
            n_bits,
        }
    }

    fn probes(&self, key: Key) -> [usize; 2] {
        [
            (splitmix64(key) % self.n_bits as u64) as usize,
            (splitmix64(key ^ 0xA5A5_A5A5_5A5A_5A5A) % self.n_bits as u64) as usize,
        ]
    }

    /// Record `key`.
    pub fn insert(&mut self, key: Key) {
        for p in self.probes(key) {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
    }

    /// True if `key` *may* be present; false means definitely absent.
    pub fn may_contain(&self, key: Key) -> bool {
        self.probes(key)
            .iter()
            .all(|&p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_and_few_false_positives() {
        let keys: Vec<Key> = (0..1000).map(|i| i * 3 + 1).collect();
        let mut b = Bloom::with_capacity(keys.len(), 8);
        for &k in &keys {
            b.insert(k);
        }
        assert!(keys.iter().all(|&k| b.may_contain(k)));
        let false_pos = (0..10_000u64)
            .map(|i| 1_000_000 + i)
            .filter(|&k| b.may_contain(k))
            .count();
        assert!(
            false_pos < 1_500,
            "false-positive rate too high: {false_pos}/10000"
        );
    }
}
