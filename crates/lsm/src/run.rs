//! Immutable sorted runs on contiguous disk pages.
//!
//! A run is the unit the LSM engine flushes and compacts: a key-sorted
//! sequence of *items* — puts (key + record bytes), point tombstones
//! (key), and range tombstones (`[lo, hi]`, stored at their `lo`
//! position) — packed into a contiguous page extent written with one
//! chained sequential write (the same bulk-build idiom as the B-tree's
//! bottom-up load). Alongside the pages the run keeps in-memory metadata:
//! per-page **fence keys** (first key of each page, so a point lookup
//! touches exactly one page), a [`Bloom`] filter over its point keys, and
//! the delete-awareness counters compaction's victim selection reads
//! (tombstone count, sequence number, oldest tombstone age).
//!
//! Page format: `u16` item count, then items back to back — tag byte
//! (0 = put, 1 = point tombstone, 2 = range tombstone), `u64` key, then
//! the fixed-length record for puts or the `u64` high key for range
//! tombstones.

use std::sync::Arc;

use bd_btree::Key;
use bd_storage::{pacer, BufferPool, PageId, StorageResult, StructureId, PAGE_SIZE};

use crate::bloom::Bloom;

/// One logical item in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A live record (encoded with the table's schema).
    Put(Vec<u8>),
    /// A point tombstone: the key is deleted as of this run's sequence.
    Del,
    /// A range tombstone covering `lo ..= hi` (the item's key is `lo`).
    RangeDel(Key),
}

impl Item {
    fn encoded_len(&self, record_len: usize) -> usize {
        1 + 8
            + match self {
                Item::Put(_) => record_len,
                Item::Del => 0,
                Item::RangeDel(_) => 8,
            }
    }
}

const PAGE_HEADER: usize = 2;

/// An immutable sorted run: `n_pages` contiguous pages starting at
/// `first_page`, plus the in-memory metadata reads and compaction use.
#[derive(Debug, Clone)]
pub struct Run {
    /// First page of the contiguous extent.
    pub first_page: PageId,
    /// Extent length in pages.
    pub n_pages: usize,
    /// First key stored on each page (`fences[i]` belongs to page
    /// `first_page + i`); ascending.
    pub fences: Vec<Key>,
    /// Smallest key in the run (including range-tombstone `lo`s).
    pub min_key: Key,
    /// Largest key in the run (including range-tombstone `hi`s).
    pub max_key: Key,
    /// Number of puts.
    pub puts: usize,
    /// Number of point tombstones.
    pub point_tombs: usize,
    /// The run's range tombstones `[lo, hi]`, ascending by `lo`.
    pub range_tombs: Vec<(Key, Key)>,
    /// Membership filter over the run's point keys (puts + tombstones).
    pub bloom: Bloom,
    /// Creation sequence: larger = newer. Shadowing is resolved by level
    /// order first and this sequence within level 0.
    pub seq: u64,
    /// Sequence of the oldest tombstone this run carries (inherited
    /// through merges), or `None` when tombstone-free. Drives the FADE
    /// purge deadline.
    pub oldest_tomb_seq: Option<u64>,
    /// Fixed record length of puts (from the table schema).
    pub record_len: usize,
}

impl Run {
    /// Total items (puts + point tombstones + range tombstones).
    pub fn items(&self) -> usize {
        self.puts + self.point_tombs + self.range_tombs.len()
    }

    /// Total tombstones (point + range).
    pub fn tombstones(&self) -> usize {
        self.point_tombs + self.range_tombs.len()
    }

    /// Write a run from `items` (sorted by key, at most one put/point
    /// tombstone per key). Pages are allocated contiguously under `owner`
    /// and written with one chained sequential write.
    pub fn write(
        pool: &Arc<BufferPool>,
        owner: StructureId,
        record_len: usize,
        items: &[(Key, Item)],
        seq: u64,
        oldest_tomb_seq: Option<u64>,
        bloom_bits_per_key: usize,
    ) -> StorageResult<Run> {
        debug_assert!(items.windows(2).all(|w| w[0].0 <= w[1].0), "run unsorted");
        assert!(!items.is_empty(), "empty runs are never written");

        // Greedy packing: page boundaries become fence keys.
        let mut pages: Vec<&[(Key, Item)]> = Vec::new();
        let mut start = 0;
        let mut used = PAGE_HEADER;
        for (i, (_, item)) in items.iter().enumerate() {
            let len = item.encoded_len(record_len);
            assert!(PAGE_HEADER + len <= PAGE_SIZE, "item exceeds a page");
            if used + len > PAGE_SIZE {
                pages.push(&items[start..i]);
                start = i;
                used = PAGE_HEADER;
            }
            used += len;
        }
        pages.push(&items[start..]);

        let n_pages = pages.len();
        let first_page = pool.allocate_contiguous(n_pages, owner);
        pool.with_disk(|disk| {
            disk.write_chain(first_page, n_pages, |pid, page| {
                let chunk = pages[(pid - first_page) as usize];
                let mut pos = PAGE_HEADER;
                page[..2].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                for (key, item) in chunk {
                    page[pos] = match item {
                        Item::Put(_) => 0,
                        Item::Del => 1,
                        Item::RangeDel(_) => 2,
                    };
                    page[pos + 1..pos + 9].copy_from_slice(&key.to_le_bytes());
                    pos += 9;
                    match item {
                        Item::Put(rec) => {
                            debug_assert_eq!(rec.len(), record_len);
                            page[pos..pos + record_len].copy_from_slice(rec);
                            pos += record_len;
                        }
                        Item::Del => {}
                        Item::RangeDel(hi) => {
                            page[pos..pos + 8].copy_from_slice(&hi.to_le_bytes());
                            pos += 8;
                        }
                    }
                }
                page[pos..].fill(0);
            })
        })?;

        let mut bloom = Bloom::with_capacity(items.len(), bloom_bits_per_key);
        let mut puts = 0;
        let mut point_tombs = 0;
        let mut range_tombs = Vec::new();
        let mut max_key = items[items.len() - 1].0;
        for (key, item) in items {
            match item {
                Item::Put(_) => {
                    puts += 1;
                    bloom.insert(*key);
                }
                Item::Del => {
                    point_tombs += 1;
                    bloom.insert(*key);
                }
                Item::RangeDel(hi) => {
                    range_tombs.push((*key, *hi));
                    max_key = max_key.max(*hi);
                }
            }
        }
        Ok(Run {
            first_page,
            n_pages,
            fences: pages.iter().map(|c| c[0].0).collect(),
            min_key: items[0].0,
            max_key,
            puts,
            point_tombs,
            range_tombs,
            bloom,
            seq,
            oldest_tomb_seq,
            record_len,
        }
        .into_checked())
    }

    fn into_checked(self) -> Run {
        debug_assert!(self.fences.windows(2).all(|w| w[0] <= w[1]));
        self
    }

    /// True when `key` could be stored in this run (fence range + filter).
    pub fn may_contain(&self, key: Key) -> bool {
        key >= self.min_key && key <= self.max_key && self.bloom.may_contain(key)
    }

    /// True when `[lo, hi]` overlaps the run's key range.
    pub fn overlaps(&self, lo: Key, hi: Key) -> bool {
        lo <= self.max_key && hi >= self.min_key
    }

    /// Point lookup inside the run: the put/tombstone stored under `key`,
    /// if any. Range tombstones are *not* consulted here — the table
    /// layer applies them by sequence. One page read at most (fences),
    /// and none at all when the bloom filter rejects.
    pub fn search(&self, pool: &Arc<BufferPool>, key: Key) -> StorageResult<Option<Item>> {
        if !self.may_contain(key) {
            return Ok(None);
        }
        // Last page whose fence is <= key.
        let page_idx = match self.fences.partition_point(|&f| f <= key) {
            0 => return Ok(None),
            p => p - 1,
        };
        let pid = self.first_page + page_idx as PageId;
        let guard = pool.pin_read(pid)?;
        for (k, item) in parse_page(&guard[..], self.record_len) {
            if k == key && !matches!(item, Item::RangeDel(_)) {
                return Ok(Some(item));
            }
            if k > key {
                break;
            }
        }
        Ok(None)
    }

    /// Point items (puts and point tombstones) with `lo <= key <= hi`, in
    /// key order. Range tombstones are skipped — callers read them from
    /// [`Run::range_tombs`] metadata, which also covers tombstones whose
    /// `lo` anchor falls *before* the scanned window. Fence keys bound the
    /// page walk to the overlapping prefix/suffix; a pacer checkpoint runs
    /// between pages with no pin held.
    pub fn scan_range(
        &self,
        pool: &Arc<BufferPool>,
        lo: Key,
        hi: Key,
    ) -> StorageResult<Vec<(Key, Item)>> {
        if !self.overlaps(lo, hi) {
            return Ok(Vec::new());
        }
        // First page that can hold `lo` .. last page whose fence is <= hi.
        let first = self.fences.partition_point(|&f| f <= lo).saturating_sub(1);
        let last = match self.fences.partition_point(|&f| f <= hi) {
            0 => return Ok(Vec::new()),
            p => p - 1,
        };
        let mut out = Vec::new();
        for (i, page_idx) in (first..=last).enumerate() {
            if i > 0 {
                pacer::checkpoint()?;
            }
            let pid = self.first_page + page_idx as PageId;
            let items = {
                let guard = pool.pin_read(pid)?;
                parse_page(&guard[..], self.record_len)
            };
            for (k, item) in items {
                if k > hi {
                    return Ok(out);
                }
                if k >= lo && !matches!(item, Item::RangeDel(_)) {
                    out.push((k, item));
                }
            }
        }
        Ok(out)
    }

    /// Read the whole run back, page by page, with a pacer checkpoint
    /// between pages and no pin held across them.
    pub fn read_all(&self, pool: &Arc<BufferPool>) -> StorageResult<Vec<(Key, Item)>> {
        let mut cursor = RunCursor::open(pool.clone(), self)?;
        let mut out = Vec::with_capacity(self.items());
        while let Some(entry) = cursor.next_item()? {
            out.push(entry);
        }
        Ok(out)
    }
}

/// Split sorted items into chunks that each pack into at most `max_pages`
/// pages under the same greedy layout [`Run::write`] uses — the partition
/// step that keeps runs at SST-file granularity, so a compaction never
/// rewrites more than the victim plus the partitions it overlaps.
pub fn partition_items(
    items: Vec<(Key, Item)>,
    record_len: usize,
    max_pages: usize,
) -> Vec<Vec<(Key, Item)>> {
    let max_pages = max_pages.max(1);
    let mut chunks = Vec::new();
    let mut chunk: Vec<(Key, Item)> = Vec::new();
    let mut pages = 1usize;
    let mut used = PAGE_HEADER;
    for (key, item) in items {
        let len = item.encoded_len(record_len);
        if used + len > PAGE_SIZE {
            if pages == max_pages {
                chunks.push(std::mem::take(&mut chunk));
                pages = 1;
            } else {
                pages += 1;
            }
            used = PAGE_HEADER;
        }
        used += len;
        chunk.push((key, item));
    }
    if !chunk.is_empty() {
        chunks.push(chunk);
    }
    // A range tombstone reaching past its partition would make sibling
    // partitions overlap (its `hi` extends `max_key`). Split it at each
    // boundary — the two halves cover exactly the same keys.
    for i in 0..chunks.len().saturating_sub(1) {
        let next_first = chunks[i + 1][0].0;
        let mut kept = Vec::with_capacity(chunks[i].len());
        let mut carried = Vec::new();
        for (lo, item) in std::mem::take(&mut chunks[i]) {
            match item {
                Item::RangeDel(hi) if hi >= next_first => {
                    carried.push((next_first, Item::RangeDel(hi)));
                    if lo < next_first {
                        kept.push((lo, Item::RangeDel(next_first - 1)));
                    }
                }
                other => kept.push((lo, other)),
            }
        }
        chunks[i] = kept;
        chunks[i + 1].splice(0..0, carried);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_page(page: &[u8], record_len: usize) -> Vec<(Key, Item)> {
    let count = u16::from_le_bytes([page[0], page[1]]) as usize;
    let mut pos = PAGE_HEADER;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = page[pos];
        let key = Key::from_le_bytes(page[pos + 1..pos + 9].try_into().unwrap());
        pos += 9;
        let item = match tag {
            0 => {
                let rec = page[pos..pos + record_len].to_vec();
                pos += record_len;
                Item::Put(rec)
            }
            1 => Item::Del,
            2 => {
                let hi = Key::from_le_bytes(page[pos..pos + 8].try_into().unwrap());
                pos += 8;
                Item::RangeDel(hi)
            }
            t => unreachable!("corrupt run page: item tag {t}"),
        };
        items.push((key, item));
    }
    items
}

/// Streaming reader over one run: pins one page at a time, parses it,
/// drops the pin, and calls [`pacer::checkpoint`] between pages — the
/// pattern every long scan in the workspace follows, so compaction merges
/// and full scans are pausable with zero pins held while parked.
pub struct RunCursor {
    pool: Arc<BufferPool>,
    first_page: PageId,
    n_pages: usize,
    record_len: usize,
    next_page: usize,
    buffered: std::vec::IntoIter<(Key, Item)>,
}

impl RunCursor {
    /// Open a cursor at the start of `run`, posting the whole extent to
    /// the read-ahead window.
    pub fn open(pool: Arc<BufferPool>, run: &Run) -> StorageResult<RunCursor> {
        pool.prefetch_run(run.first_page, run.n_pages)?;
        Ok(RunCursor {
            pool,
            first_page: run.first_page,
            n_pages: run.n_pages,
            record_len: run.record_len,
            next_page: 0,
            buffered: Vec::new().into_iter(),
        })
    }

    /// Next item in key order, or `None` at the end of the run.
    pub fn next_item(&mut self) -> StorageResult<Option<(Key, Item)>> {
        loop {
            if let Some(entry) = self.buffered.next() {
                return Ok(Some(entry));
            }
            if self.next_page >= self.n_pages {
                return Ok(None);
            }
            if self.next_page > 0 {
                pacer::checkpoint()?;
            }
            let pid = self.first_page + self.next_page as PageId;
            self.next_page += 1;
            let items = {
                let guard = self.pool.pin_read(pid)?;
                parse_page(&guard[..], self.record_len)
            };
            self.buffered = items.into_iter();
        }
    }

    /// The key the next item would have, without consuming it.
    pub fn peek_key(&mut self) -> StorageResult<Option<Key>> {
        if let Some((k, _)) = self.buffered.as_slice().first() {
            return Ok(Some(*k));
        }
        // Force the next page into the buffer, then peek.
        match self.next_item()? {
            None => Ok(None),
            Some(entry) => {
                let key = entry.0;
                // Push back: rebuild the iterator with the entry first.
                let mut rest: Vec<(Key, Item)> = vec![entry];
                rest.extend(self.buffered.by_ref());
                self.buffered = rest.into_iter();
                Ok(Some(key))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_splits_range_tombstones_at_boundaries() {
        // ~56 put items per page at record_len 64; force several pages.
        let record_len = 64;
        let mut items: Vec<(Key, Item)> = (0..300u64)
            .map(|k| (k * 2, Item::Put(vec![0u8; record_len])))
            .collect();
        items.push((1, Item::RangeDel(597)));
        items.sort_by_key(|(k, _)| *k);
        let chunks = partition_items(items, record_len, 2);
        assert!(chunks.len() > 1, "must partition");
        for w in chunks.windows(2) {
            let next_first = w[1][0].0;
            for (lo, item) in &w[0] {
                if let Item::RangeDel(hi) = item {
                    assert!(*hi < next_first, "tombstone [{lo}, {hi}] crosses boundary");
                }
            }
        }
        // Coverage is preserved: the tombstone pieces still span [1, 597].
        let pieces: Vec<(Key, Key)> = chunks
            .iter()
            .flatten()
            .filter_map(|(lo, item)| match item {
                Item::RangeDel(hi) => Some((*lo, *hi)),
                _ => None,
            })
            .collect();
        assert!(pieces.len() > 1, "tombstone must have been split");
        assert_eq!(pieces.first().unwrap().0, 1);
        assert_eq!(pieces.last().unwrap().1, 597);
        for w in pieces.windows(2) {
            assert_eq!(w[1].0, w[0].1 + 1, "pieces must tile without gaps");
        }
    }
}
