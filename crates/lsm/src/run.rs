//! Immutable sorted runs on contiguous disk pages.
//!
//! A run is the unit the LSM engine flushes and compacts: a key-sorted
//! sequence of *items* — puts (key + record bytes), point tombstones
//! (key), and range tombstones (`[lo, hi]`, stored at their `lo`
//! position) — packed into a contiguous page extent written with one
//! chained sequential write (the same bulk-build idiom as the B-tree's
//! bottom-up load). Alongside the pages the run keeps in-memory metadata:
//! per-page **fence keys** (first key of each page, so a point lookup
//! touches exactly one page), a [`Bloom`] filter over its point keys, and
//! the delete-awareness counters compaction's victim selection reads
//! (tombstone count, sequence number, oldest tombstone age).
//!
//! Page format: `u16` item count, then items back to back — tag byte
//! (0 = put, 1 = point tombstone, 2 = range tombstone), `u64` key, then
//! the fixed-length record for puts or the `u64` high key for range
//! tombstones.

use std::sync::Arc;

use bd_btree::Key;
use bd_storage::{pacer, BufferPool, PageId, StorageResult, StructureId, PAGE_SIZE};

use crate::bloom::Bloom;

/// One logical item in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A live record (encoded with the table's schema).
    Put(Vec<u8>),
    /// A point tombstone: the key is deleted as of this run's sequence.
    Del,
    /// A range tombstone covering `lo ..= hi` (the item's key is `lo`).
    RangeDel(Key),
}

impl Item {
    fn encoded_len(&self, record_len: usize) -> usize {
        1 + 8
            + match self {
                Item::Put(_) => record_len,
                Item::Del => 0,
                Item::RangeDel(_) => 8,
            }
    }
}

const PAGE_HEADER: usize = 2;

/// An immutable sorted run: `n_pages` contiguous pages starting at
/// `first_page`, plus the in-memory metadata reads and compaction use.
#[derive(Debug, Clone)]
pub struct Run {
    /// First page of the contiguous extent.
    pub first_page: PageId,
    /// Extent length in pages.
    pub n_pages: usize,
    /// First key stored on each page (`fences[i]` belongs to page
    /// `first_page + i`); ascending.
    pub fences: Vec<Key>,
    /// Smallest key in the run (including range-tombstone `lo`s).
    pub min_key: Key,
    /// Largest key in the run (including range-tombstone `hi`s).
    pub max_key: Key,
    /// Number of puts.
    pub puts: usize,
    /// Number of point tombstones.
    pub point_tombs: usize,
    /// The run's range tombstones `[lo, hi]`, ascending by `lo`.
    pub range_tombs: Vec<(Key, Key)>,
    /// Membership filter over the run's point keys (puts + tombstones).
    pub bloom: Bloom,
    /// Creation sequence: larger = newer. Shadowing is resolved by level
    /// order first and this sequence within level 0.
    pub seq: u64,
    /// Sequence of the oldest tombstone this run carries (inherited
    /// through merges), or `None` when tombstone-free. Drives the FADE
    /// purge deadline.
    pub oldest_tomb_seq: Option<u64>,
    /// Fixed record length of puts (from the table schema).
    pub record_len: usize,
}

impl Run {
    /// Total items (puts + point tombstones + range tombstones).
    pub fn items(&self) -> usize {
        self.puts + self.point_tombs + self.range_tombs.len()
    }

    /// Total tombstones (point + range).
    pub fn tombstones(&self) -> usize {
        self.point_tombs + self.range_tombs.len()
    }

    /// Write a run from `items` (sorted by key, at most one put/point
    /// tombstone per key). Pages are allocated contiguously under `owner`
    /// and written with one chained sequential write.
    pub fn write(
        pool: &Arc<BufferPool>,
        owner: StructureId,
        record_len: usize,
        items: &[(Key, Item)],
        seq: u64,
        oldest_tomb_seq: Option<u64>,
        bloom_bits_per_key: usize,
    ) -> StorageResult<Run> {
        debug_assert!(items.windows(2).all(|w| w[0].0 <= w[1].0), "run unsorted");
        assert!(!items.is_empty(), "empty runs are never written");

        // Greedy packing: page boundaries become fence keys.
        let pages = layout_pages(items, record_len);

        let n_pages = pages.len();
        let first_page = pool.allocate_contiguous(n_pages, owner);
        pool.with_disk(|disk| {
            disk.write_chain(first_page, n_pages, |pid, page| {
                let chunk = pages[(pid - first_page) as usize];
                let mut pos = PAGE_HEADER;
                page[..2].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                for (key, item) in chunk {
                    page[pos] = match item {
                        Item::Put(_) => 0,
                        Item::Del => 1,
                        Item::RangeDel(_) => 2,
                    };
                    page[pos + 1..pos + 9].copy_from_slice(&key.to_le_bytes());
                    pos += 9;
                    match item {
                        Item::Put(rec) => {
                            debug_assert_eq!(rec.len(), record_len);
                            page[pos..pos + record_len].copy_from_slice(rec);
                            pos += record_len;
                        }
                        Item::Del => {}
                        Item::RangeDel(hi) => {
                            page[pos..pos + 8].copy_from_slice(&hi.to_le_bytes());
                            pos += 8;
                        }
                    }
                }
                page[pos..].fill(0);
            })
        })?;

        let mut bloom = Bloom::with_capacity(items.len(), bloom_bits_per_key);
        let mut puts = 0;
        let mut point_tombs = 0;
        let mut range_tombs = Vec::new();
        let mut max_key = items[items.len() - 1].0;
        for (key, item) in items {
            match item {
                Item::Put(_) => {
                    puts += 1;
                    bloom.insert(*key);
                }
                Item::Del => {
                    point_tombs += 1;
                    bloom.insert(*key);
                }
                Item::RangeDel(hi) => {
                    range_tombs.push((*key, *hi));
                    max_key = max_key.max(*hi);
                }
            }
        }
        Ok(Run {
            first_page,
            n_pages,
            fences: pages.iter().map(|c| c[0].0).collect(),
            min_key: items[0].0,
            max_key,
            puts,
            point_tombs,
            range_tombs,
            bloom,
            seq,
            oldest_tomb_seq,
            record_len,
        }
        .into_checked())
    }

    fn into_checked(self) -> Run {
        debug_assert!(self.fences.windows(2).all(|w| w[0] <= w[1]));
        self
    }

    /// True when `key` could be stored in this run (fence range + filter).
    pub fn may_contain(&self, key: Key) -> bool {
        key >= self.min_key && key <= self.max_key && self.bloom.may_contain(key)
    }

    /// True when `[lo, hi]` overlaps the run's key range.
    pub fn overlaps(&self, lo: Key, hi: Key) -> bool {
        lo <= self.max_key && hi >= self.min_key
    }

    /// Point lookup inside the run: the put/tombstone stored under `key`,
    /// if any. Range tombstones are *not* consulted here — the table
    /// layer applies them by sequence. One page read in the common case
    /// (fences), and none at all when the bloom filter rejects.
    pub fn search(&self, pool: &Arc<BufferPool>, key: Key) -> StorageResult<Option<Item>> {
        if !self.may_contain(key) {
            return Ok(None);
        }
        // Last page whose fence is <= key. [`layout_pages`] keeps
        // equal-key groups on one page, but a group bigger than a page is
        // force-split — so when the fence *equals* the probe key, the
        // key's items may start on an earlier page; walk back to the
        // first page that can hold them.
        let last = match self.fences.partition_point(|&f| f <= key) {
            0 => return Ok(None),
            p => p - 1,
        };
        let mut first = last;
        while first > 0 && self.fences[first] == key {
            first -= 1;
        }
        for page_idx in first..=last {
            let pid = self.first_page + page_idx as PageId;
            let items = {
                let guard = pool.pin_read(pid)?;
                parse_page(&guard[..], self.record_len)
            };
            for (k, item) in items {
                if k == key && !matches!(item, Item::RangeDel(_)) {
                    return Ok(Some(item));
                }
                if k > key {
                    return Ok(None);
                }
            }
        }
        Ok(None)
    }

    /// Point items (puts and point tombstones) with `lo <= key <= hi`, in
    /// key order. Range tombstones are skipped — callers read them from
    /// [`Run::range_tombs`] metadata, which also covers tombstones whose
    /// `lo` anchor falls *before* the scanned window. Fence keys bound the
    /// page walk to the overlapping prefix/suffix; a pacer checkpoint runs
    /// between pages with no pin held.
    pub fn scan_range(
        &self,
        pool: &Arc<BufferPool>,
        lo: Key,
        hi: Key,
    ) -> StorageResult<Vec<(Key, Item)>> {
        if !self.overlaps(lo, hi) {
            return Ok(Vec::new());
        }
        // First page that can hold `lo` .. last page whose fence is <= hi.
        // As in [`Run::search`], a fence equal to `lo` can mean items at
        // `lo` straddle from the preceding page (force-split equal-key
        // group); back up past every such page.
        let mut first = self.fences.partition_point(|&f| f <= lo).saturating_sub(1);
        while first > 0 && self.fences[first] == lo {
            first -= 1;
        }
        let last = match self.fences.partition_point(|&f| f <= hi) {
            0 => return Ok(Vec::new()),
            p => p - 1,
        };
        let mut out = Vec::new();
        for (i, page_idx) in (first..=last).enumerate() {
            if i > 0 {
                pacer::checkpoint()?;
            }
            let pid = self.first_page + page_idx as PageId;
            let items = {
                let guard = pool.pin_read(pid)?;
                parse_page(&guard[..], self.record_len)
            };
            for (k, item) in items {
                if k > hi {
                    return Ok(out);
                }
                if k >= lo && !matches!(item, Item::RangeDel(_)) {
                    out.push((k, item));
                }
            }
        }
        Ok(out)
    }

    /// Read the whole run back, page by page, with a pacer checkpoint
    /// between pages and no pin held across them.
    pub fn read_all(&self, pool: &Arc<BufferPool>) -> StorageResult<Vec<(Key, Item)>> {
        let mut cursor = RunCursor::open(pool.clone(), self)?;
        let mut out = Vec::with_capacity(self.items());
        while let Some(entry) = cursor.next_item()? {
            out.push(entry);
        }
        Ok(out)
    }
}

/// Greedy page layout shared by [`Run::write`] and [`partition_items`]:
/// pack sorted items into pages front to back, but **never start a new
/// page between equal-key items** — a put and a range tombstone anchored
/// at the same key must share a page, or the fence of the following page
/// would equal the key and a fence-guided point lookup would miss the
/// earlier item. The only exception is an equal-key group that cannot fit
/// on one page by itself; [`Run::search`] / [`Run::scan_range`] handle
/// that straddle by also visiting preceding same-fence pages.
fn layout_pages(items: &[(Key, Item)], record_len: usize) -> Vec<&[(Key, Item)]> {
    let mut pages: Vec<&[(Key, Item)]> = Vec::new();
    let mut start = 0;
    let mut used = PAGE_HEADER;
    for (i, (key, item)) in items.iter().enumerate() {
        let len = item.encoded_len(record_len);
        assert!(PAGE_HEADER + len <= PAGE_SIZE, "item exceeds a page");
        if used + len > PAGE_SIZE {
            // Back the split up to the start of the current equal-key
            // group, unless the group (plus this item) overflows a page
            // on its own — then a forced mid-group split is the only
            // layout that fits.
            let mut split = i;
            while split > start && items[split - 1].0 == *key {
                split -= 1;
            }
            let group: usize = items[split..i]
                .iter()
                .map(|(_, it)| it.encoded_len(record_len))
                .sum();
            if split == start || PAGE_HEADER + group + len > PAGE_SIZE {
                split = i;
            }
            pages.push(&items[start..split]);
            start = split;
            used = PAGE_HEADER
                + items[start..i]
                    .iter()
                    .map(|(_, it)| it.encoded_len(record_len))
                    .sum::<usize>();
        }
        used += len;
    }
    pages.push(&items[start..]);
    pages
}

/// Split sorted items into chunks that each pack into at most `max_pages`
/// pages under the same greedy layout [`Run::write`] uses — the partition
/// step that keeps runs at SST-file granularity, so a compaction never
/// rewrites more than the victim plus the partitions it overlaps.
///
/// A chunk boundary is never placed between equal-key items: sibling runs
/// sharing a key would overlap (`max_key == min_key`) and break the level
/// non-overlap invariant. When a boundary would land inside an equal-key
/// group, the whole group moves into the next chunk.
pub fn partition_items(
    items: Vec<(Key, Item)>,
    record_len: usize,
    max_pages: usize,
) -> Vec<Vec<(Key, Item)>> {
    let max_pages = max_pages.max(1);
    // Chunk at every `max_pages`-th page boundary of the shared layout;
    // those boundaries already avoid equal-key splits except when a
    // single group overflows a page, which the walk-back below fixes.
    let mut breaks: Vec<usize> = Vec::new();
    {
        let pages = layout_pages(&items, record_len);
        let mut idx = 0;
        for (pi, page) in pages.iter().enumerate() {
            if pi > 0 && pi % max_pages == 0 {
                breaks.push(idx);
            }
            idx += page.len();
        }
    }
    let mut chunks: Vec<Vec<(Key, Item)>> = Vec::with_capacity(breaks.len() + 1);
    {
        let mut prev = 0;
        let mut rest = items;
        for mut b in breaks {
            // Move a straddling equal-key group wholly into the next
            // chunk; drop the break when the group swallows the chunk.
            while b > prev && rest[b - prev - 1].0 == rest[b - prev].0 {
                b -= 1;
            }
            if b > prev {
                let tail = rest.split_off(b - prev);
                chunks.push(rest);
                rest = tail;
                prev = b;
            }
        }
        chunks.push(rest);
    }
    // A range tombstone reaching past its partition would make sibling
    // partitions overlap (its `hi` extends `max_key`). Split it at each
    // boundary — the two halves cover exactly the same keys.
    for i in 0..chunks.len().saturating_sub(1) {
        let next_first = chunks[i + 1][0].0;
        let mut kept = Vec::with_capacity(chunks[i].len());
        let mut carried = Vec::new();
        for (lo, item) in std::mem::take(&mut chunks[i]) {
            match item {
                Item::RangeDel(hi) if hi >= next_first => {
                    carried.push((next_first, Item::RangeDel(hi)));
                    if lo < next_first {
                        kept.push((lo, Item::RangeDel(next_first - 1)));
                    }
                }
                other => kept.push((lo, other)),
            }
        }
        chunks[i] = kept;
        chunks[i + 1].splice(0..0, carried);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_page(page: &[u8], record_len: usize) -> Vec<(Key, Item)> {
    let count = u16::from_le_bytes([page[0], page[1]]) as usize;
    let mut pos = PAGE_HEADER;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = page[pos];
        let key = Key::from_le_bytes(page[pos + 1..pos + 9].try_into().unwrap());
        pos += 9;
        let item = match tag {
            0 => {
                let rec = page[pos..pos + record_len].to_vec();
                pos += record_len;
                Item::Put(rec)
            }
            1 => Item::Del,
            2 => {
                let hi = Key::from_le_bytes(page[pos..pos + 8].try_into().unwrap());
                pos += 8;
                Item::RangeDel(hi)
            }
            t => unreachable!("corrupt run page: item tag {t}"),
        };
        items.push((key, item));
    }
    items
}

/// Streaming reader over one run: pins one page at a time, parses it,
/// drops the pin, and calls [`pacer::checkpoint`] between pages — the
/// pattern every long scan in the workspace follows, so compaction merges
/// and full scans are pausable with zero pins held while parked.
pub struct RunCursor {
    pool: Arc<BufferPool>,
    first_page: PageId,
    n_pages: usize,
    record_len: usize,
    next_page: usize,
    buffered: std::vec::IntoIter<(Key, Item)>,
}

impl RunCursor {
    /// Open a cursor at the start of `run`, posting the whole extent to
    /// the read-ahead window.
    pub fn open(pool: Arc<BufferPool>, run: &Run) -> StorageResult<RunCursor> {
        pool.prefetch_run(run.first_page, run.n_pages)?;
        Ok(RunCursor {
            pool,
            first_page: run.first_page,
            n_pages: run.n_pages,
            record_len: run.record_len,
            next_page: 0,
            buffered: Vec::new().into_iter(),
        })
    }

    /// Next item in key order, or `None` at the end of the run.
    pub fn next_item(&mut self) -> StorageResult<Option<(Key, Item)>> {
        loop {
            if let Some(entry) = self.buffered.next() {
                return Ok(Some(entry));
            }
            if self.next_page >= self.n_pages {
                return Ok(None);
            }
            if self.next_page > 0 {
                pacer::checkpoint()?;
            }
            let pid = self.first_page + self.next_page as PageId;
            self.next_page += 1;
            let items = {
                let guard = self.pool.pin_read(pid)?;
                parse_page(&guard[..], self.record_len)
            };
            self.buffered = items.into_iter();
        }
    }

    /// The key the next item would have, without consuming it.
    pub fn peek_key(&mut self) -> StorageResult<Option<Key>> {
        if let Some((k, _)) = self.buffered.as_slice().first() {
            return Ok(Some(*k));
        }
        // Force the next page into the buffer, then peek.
        match self.next_item()? {
            None => Ok(None),
            Some(entry) => {
                let key = entry.0;
                // Push back: rebuild the iterator with the entry first.
                let mut rest: Vec<(Key, Item)> = vec![entry];
                rest.extend(self.buffered.by_ref());
                self.buffered = rest.into_iter();
                Ok(Some(key))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_storage::{CostModel, SimDisk};

    fn pool() -> Arc<BufferPool> {
        BufferPool::with_byte_budget(SimDisk::new(CostModel::default()), 1 << 20)
    }

    /// Items whose greedy layout, were it key-oblivious, would end a page
    /// exactly at `Put(straddle_key)` with the same key's range tombstone
    /// overflowing onto the next page (the resurrect-after-range-delete
    /// straddle): `n` puts fill the page to within a tombstone's width of
    /// the end, then the tombstone, then trailing puts.
    fn straddle_items(record_len: usize) -> (Key, Vec<(Key, Item)>) {
        let put_len = 1 + 8 + record_len;
        let n = (PAGE_SIZE - PAGE_HEADER) / put_len;
        let used = PAGE_HEADER + n * put_len;
        let tomb_len = 1 + 8 + 8;
        assert!(
            used <= PAGE_SIZE && used + tomb_len > PAGE_SIZE,
            "geometry drifted: {used} of {PAGE_SIZE}"
        );
        let straddle_key = n as Key - 1;
        let mut items: Vec<(Key, Item)> = (0..n as Key)
            .map(|k| (k, Item::Put(vec![k as u8; record_len])))
            .collect();
        items.push((straddle_key, Item::RangeDel(straddle_key)));
        for k in n as Key..n as Key + 20 {
            items.push((k, Item::Put(vec![k as u8; record_len])));
        }
        (straddle_key, items)
    }

    #[test]
    fn equal_key_put_and_range_tombstone_share_a_page() {
        // A resurrected put followed by a same-key-anchored range
        // tombstone (memtable drain order) must not be split across a
        // page boundary: the follower page's fence would equal the key
        // and a fence-guided search would miss the put, silently reading
        // a live key as deleted.
        let record_len = 64;
        let pool = pool();
        let (key, items) = straddle_items(record_len);
        let run = Run::write(
            &pool,
            StructureId::lsm_of(0),
            record_len,
            &items,
            1,
            Some(1),
            10,
        )
        .unwrap();
        assert!(run.n_pages >= 2, "must span pages: {}", run.n_pages);
        let put = Item::Put(vec![key as u8; record_len]);
        assert_eq!(run.search(&pool, key).unwrap(), Some(put.clone()));
        assert_eq!(
            run.scan_range(&pool, key, key + 5).unwrap().first(),
            Some(&(key, put)),
            "range scan anchored at the straddle key must keep the put"
        );
        // Every other key stays reachable too.
        for (k, item) in &items {
            if matches!(item, Item::Put(_)) {
                assert_eq!(
                    run.search(&pool, *k).unwrap().as_ref(),
                    Some(item),
                    "key {k}"
                );
            }
        }
    }

    #[test]
    fn oversized_equal_key_group_straddles_but_stays_readable() {
        // A single equal-key group bigger than a page *must* be split;
        // search/scan then walk back across the same-fence pages instead
        // of trusting the fence index alone.
        let record_len = 64;
        let pool = pool();
        let mut items: Vec<(Key, Item)> = (0..30u64)
            .map(|k| (k, Item::Put(vec![k as u8; record_len])))
            .collect();
        // ~5.1 KB of tombstones anchored at one key: forces a mid-group
        // page split whatever the packer does.
        for _ in 0..300 {
            items.push((30, Item::RangeDel(31)));
        }
        items.push((30, Item::RangeDel(30)));
        items.sort_by_key(|(k, _)| *k);
        let at_30 = items
            .iter()
            .position(|(k, _)| *k == 30)
            .expect("key present");
        items.insert(at_30, (30, Item::Put(vec![30u8; record_len])));
        for k in 31..60u64 {
            items.push((k, Item::Put(vec![k as u8; record_len])));
        }
        let run = Run::write(
            &pool,
            StructureId::lsm_of(0),
            record_len,
            &items,
            1,
            Some(1),
            10,
        )
        .unwrap();
        assert!(
            run.fences.windows(2).any(|w| w[0] == w[1] || w[1] == 30),
            "group must straddle for this test to bite: {:?}",
            run.fences
        );
        assert_eq!(
            run.search(&pool, 30).unwrap(),
            Some(Item::Put(vec![30u8; record_len]))
        );
        assert_eq!(
            run.scan_range(&pool, 30, 35).unwrap().first(),
            Some(&(30, Item::Put(vec![30u8; record_len])))
        );
    }

    #[test]
    fn partition_never_splits_equal_key_groups() {
        // A chunk boundary between a put and its same-key range tombstone
        // would give sibling runs max_key == min_key — overlapping runs,
        // which the structural audit rejects. Includes an oversized
        // equal-key group so the boundary walk-back (not just the
        // equal-key-aware page layout) is exercised.
        let record_len = 64;
        let mut items: Vec<(Key, Item)> = Vec::new();
        for k in 0..200u64 {
            items.push((k, Item::Put(vec![0u8; record_len])));
            items.push((k, Item::RangeDel(k)));
        }
        for _ in 0..300 {
            items.push((100, Item::RangeDel(100)));
        }
        items.sort_by_key(|(k, _)| *k);
        let chunks = partition_items(items, record_len, 1);
        assert!(chunks.len() > 3, "must partition: {}", chunks.len());
        for w in chunks.windows(2) {
            let max_prev = w[0]
                .iter()
                .map(|(k, it)| match it {
                    Item::RangeDel(hi) => *hi,
                    _ => *k,
                })
                .max()
                .unwrap();
            let min_next = w[1][0].0;
            assert!(
                max_prev < min_next,
                "sibling chunks overlap: max {max_prev} >= min {min_next}"
            );
        }
    }

    #[test]
    fn partitioning_splits_range_tombstones_at_boundaries() {
        // ~56 put items per page at record_len 64; force several pages.
        let record_len = 64;
        let mut items: Vec<(Key, Item)> = (0..300u64)
            .map(|k| (k * 2, Item::Put(vec![0u8; record_len])))
            .collect();
        items.push((1, Item::RangeDel(597)));
        items.sort_by_key(|(k, _)| *k);
        let chunks = partition_items(items, record_len, 2);
        assert!(chunks.len() > 1, "must partition");
        for w in chunks.windows(2) {
            let next_first = w[1][0].0;
            for (lo, item) in &w[0] {
                if let Item::RangeDel(hi) = item {
                    assert!(*hi < next_first, "tombstone [{lo}, {hi}] crosses boundary");
                }
            }
        }
        // Coverage is preserved: the tombstone pieces still span [1, 597].
        let pieces: Vec<(Key, Key)> = chunks
            .iter()
            .flatten()
            .filter_map(|(lo, item)| match item {
                Item::RangeDel(hi) => Some((*lo, *hi)),
                _ => None,
            })
            .collect();
        assert!(pieces.len() > 1, "tombstone must have been split");
        assert_eq!(pieces.first().unwrap().0, 1);
        assert_eq!(pieces.last().unwrap().1, 597);
        for w in pieces.windows(2) {
            assert_eq!(w[1].0, w[0].1 + 1, "pieces must tile without gaps");
        }
    }
}
