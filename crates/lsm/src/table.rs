//! The leveled, delete-aware LSM table.
//!
//! Shape: a [`Memtable`] on top, then level 0 (overlapping runs, one per
//! flush, newest last) and deeper levels of non-overlapping runs sorted
//! by key. Writes go to the memtable; a full memtable flushes to a new
//! level-0 run; an over-full level compacts one **victim** run down by
//! merging it with the overlapping runs one level deeper.
//!
//! Delete-awareness lives in the victim selection, after Lethe's FADE:
//! instead of round-robining or picking the fullest run, each run is
//! scored `tombstones * (1 + age)` where age is measured in flush /
//! compaction ticks since the run's oldest tombstone entered the tree.
//! Runs dragging old deletes down win, so tombstones sink — and the
//! puts they shadow get purged — ahead of delete-free data. On top of
//! the score, any tombstone older than [`LsmConfig::purge_deadline`]
//! *forces* its run to compact even when its level is under capacity,
//! which bounds how long a deleted row can remain physically readable
//! (the paper's "bulk deletes should reclaim space promptly" argument,
//! restated for log-structured storage).
//!
//! Tombstones (point and range) are dropped when a merge writes into the
//! deepest populated level — below that there is nothing left to shadow.

use std::sync::Arc;

use bd_btree::Key;
use bd_core::audit::AuditReport;
use bd_core::error::{DbError, DbResult};
use bd_core::report::{measure, RunReport};
use bd_core::tuple::{Schema, Tuple};
use bd_core::{EngineStats, TableEngine};
use bd_storage::{
    pacer, BufferPool, CostModel, PageId, SimDisk, StorageResult, StructureId, PAGE_SIZE,
};

use crate::memtable::{MemEntry, Memtable};
use crate::run::{partition_items, Item, Run, RunCursor};
use crate::LsmConfig;

/// Size and shape of the LSM tree, for reports and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Items buffered in the memtable.
    pub memtable: usize,
    /// Number of levels with at least one run.
    pub levels: usize,
    /// Total runs across all levels.
    pub runs: usize,
    /// Total pages owned by runs.
    pub pages: usize,
    /// Total puts stored in runs (including shadowed versions).
    pub puts: usize,
    /// Total tombstones (point + range) still buffered in runs.
    pub tombstones: usize,
    /// Flushes performed over the table's lifetime.
    pub flushes: usize,
    /// Compactions performed over the table's lifetime.
    pub compactions: usize,
}

/// A delete-aware LSM table over the shared simulated-disk stack.
pub struct LsmTable {
    pool: Arc<BufferPool>,
    schema: Schema,
    owner: StructureId,
    cfg: LsmConfig,
    mem: Memtable,
    /// `levels[0]` holds overlapping flush runs, newest last; deeper
    /// levels hold non-overlapping runs sorted by `min_key`.
    levels: Vec<Vec<Run>>,
    /// Monotonic tick: bumped once per flush and once per compaction.
    /// Run sequence numbers and tombstone ages are measured in it.
    seq: u64,
    flushes: usize,
    compactions: usize,
}

impl LsmTable {
    /// A fresh table with its own simulated disk. `total_memory` is split
    /// like [`DatabaseConfig::with_total_memory`](bd_core::DatabaseConfig):
    /// 3/4 buffer pool, with the memtable playing the workspace role —
    /// so LSM and B-tree engines bench against equal cache budgets.
    pub fn new(schema: Schema, total_memory: usize, cfg: LsmConfig) -> LsmTable {
        let pool =
            BufferPool::with_byte_budget(SimDisk::new(CostModel::default()), total_memory / 4 * 3);
        LsmTable::with_pool(pool, schema, 0, cfg)
    }

    /// A table over an existing pool, owning pages as table `table_no`'s
    /// LSM structure in the page catalog.
    pub fn with_pool(
        pool: Arc<BufferPool>,
        schema: Schema,
        table_no: usize,
        cfg: LsmConfig,
    ) -> LsmTable {
        LsmTable {
            pool,
            schema,
            owner: StructureId::lsm_of(table_no),
            cfg,
            mem: Memtable::new(),
            levels: Vec::new(),
            seq: 0,
            flushes: 0,
            compactions: 0,
        }
    }

    /// The shared buffer pool (for `measure` and audits).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Tuning knobs in effect.
    pub fn config(&self) -> LsmConfig {
        self.cfg
    }

    /// Current shape.
    pub fn lsm_stats(&self) -> LsmStats {
        let all = self.levels.iter().flatten();
        LsmStats {
            memtable: self.mem.len(),
            levels: self.levels.iter().filter(|l| !l.is_empty()).count(),
            runs: self.levels.iter().map(Vec::len).sum(),
            pages: all.clone().map(|r| r.n_pages).sum(),
            puts: all.clone().map(|r| r.puts).sum(),
            tombstones: all.map(Run::tombstones).sum(),
            flushes: self.flushes,
            compactions: self.compactions,
        }
    }

    // ---- writes ------------------------------------------------------

    fn put_raw(&mut self, key: Key, record: Vec<u8>) -> StorageResult<()> {
        self.mem.put(key, record);
        self.maybe_flush()
    }

    fn delete_raw(&mut self, key: Key) -> StorageResult<()> {
        self.mem.delete(key);
        self.maybe_flush()
    }

    fn delete_range_raw(&mut self, lo: Key, hi: Key) -> StorageResult<()> {
        self.mem.delete_range(lo, hi);
        self.maybe_flush()
    }

    fn maybe_flush(&mut self) -> StorageResult<()> {
        if self.mem.len() >= self.cfg.memtable_capacity {
            self.flush()?;
        }
        Ok(())
    }

    /// Flush the memtable to a new level-0 run, then compact until every
    /// level is within shape and no tombstone is past its purge deadline.
    pub fn flush(&mut self) -> StorageResult<()> {
        let items = self.mem.drain_sorted();
        if items.is_empty() {
            return Ok(());
        }
        self.seq += 1;
        let has_tombs = items.iter().any(|(_, it)| !matches!(it, Item::Put(_)));
        let run = Run::write(
            &self.pool,
            self.owner,
            self.schema.record_len,
            &items,
            self.seq,
            has_tombs.then_some(self.seq),
            self.cfg.bloom_bits_per_key,
        )?;
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(run);
        self.flushes += 1;
        self.compact_to_shape()
    }

    // ---- compaction --------------------------------------------------

    /// Tombstone age of `run` in ticks, 0 when tombstone-free.
    fn tomb_age(&self, run: &Run) -> u64 {
        run.oldest_tomb_seq
            .map(|o| self.seq.saturating_sub(o))
            .unwrap_or(0)
    }

    /// FADE score: tombstone count weighted by tombstone age. Higher =
    /// more urgent to push down.
    fn fade_score(&self, run: &Run) -> u64 {
        run.tombstones() as u64 * (1 + self.tomb_age(run))
    }

    /// True when `run` carries a tombstone past the purge deadline.
    fn past_deadline(&self, run: &Run) -> bool {
        self.tomb_age(run) >= self.cfg.purge_deadline
    }

    /// Run-count capacity of a level: `fanout^(level+1)`, the geometric
    /// growth leveled LSMs use (runs are size-bounded partitions, so run
    /// count stands in for level bytes).
    fn max_runs(&self, level: usize) -> usize {
        self.cfg.fanout.saturating_pow(level as u32 + 1).max(1)
    }

    /// Compact until no level exceeds the fanout and no tombstone is past
    /// the purge deadline. Tombstones sink one level per merge and are
    /// dropped at the bottom, so this terminates.
    pub fn compact_to_shape(&mut self) -> StorageResult<()> {
        loop {
            let Some((level, idx)) = self.pick_victim() else {
                return Ok(());
            };
            self.compact_run(level, idx)?;
        }
    }

    /// The next run to push down, or `None` when the tree is in shape:
    /// first any run past the purge deadline (deepest level last, so
    /// upper-level deadlines are not starved by re-triggering lower
    /// ones), else the best FADE score in any over-full level.
    fn pick_victim(&self) -> Option<(usize, usize)> {
        for (l, runs) in self.levels.iter().enumerate() {
            if let Some(i) = (0..runs.len()).find(|&i| self.past_deadline(&runs[i])) {
                return Some((l, i));
            }
        }
        for (l, runs) in self.levels.iter().enumerate() {
            if runs.len() > self.max_runs(l) {
                let best = (0..runs.len()).max_by_key(|&i| {
                    // Prefer high FADE scores; among delete-free runs
                    // prefer the oldest, so compaction still rotates.
                    (self.fade_score(&runs[i]), u64::MAX - runs[i].seq)
                })?;
                return Some((l, best));
            }
        }
        None
    }

    /// Merge the victim with the overlapping runs one level deeper and
    /// write the result there. Level 0 runs overlap *each other*, so
    /// recency within level 0 is run order — compacting one of them past
    /// its siblings would invert newest-wins. Level 0 therefore always
    /// compacts as a whole (`idx` only names the trigger run); deeper
    /// levels move exactly `levels[level][idx]`. Tombstones are dropped
    /// when the output level is the deepest populated one.
    fn compact_run(&mut self, level: usize, idx: usize) -> StorageResult<()> {
        let victims: Vec<Run> = if level == 0 {
            let mut l0 = std::mem::take(&mut self.levels[0]);
            // Stored oldest-first; merge ranks are newest-first.
            l0.reverse();
            l0
        } else {
            vec![self.levels[level].remove(idx)]
        };
        let lo = victims.iter().map(|r| r.min_key).min().expect("victims");
        let hi = victims.iter().map(|r| r.max_key).max().expect("victims");
        if self.levels.len() <= level + 1 {
            self.levels.push(Vec::new());
        }
        // Everything under the victims' key hull merges too, so the
        // output run cannot overlap what stays behind at level+1.
        let below = &mut self.levels[level + 1];
        let overlapping: Vec<Run> = {
            let mut picked = Vec::new();
            let mut i = 0;
            while i < below.len() {
                if below[i].overlaps(lo, hi) {
                    picked.push(below.remove(i));
                } else {
                    i += 1;
                }
            }
            picked
        };
        // Victims shadow everything they merge with: rank 0 is newest.
        let mut inputs: Vec<Run> = victims;
        inputs.extend(overlapping);

        let drop_tombs = self.levels.iter().skip(level + 2).all(Vec::is_empty);
        let merged = self.merge_runs(&inputs, drop_tombs)?;

        self.seq += 1;
        self.compactions += 1;
        let survivors_tomb_seq = if drop_tombs {
            None
        } else {
            inputs.iter().filter_map(|r| r.oldest_tomb_seq).min()
        };
        // Write the merge output as size-bounded partitions so the next
        // compaction down is bounded too.
        for chunk in partition_items(merged, self.schema.record_len, self.cfg.max_run_pages) {
            let has_tombs = chunk.iter().any(|(_, it)| !matches!(it, Item::Put(_)));
            let run = Run::write(
                &self.pool,
                self.owner,
                self.schema.record_len,
                &chunk,
                self.seq,
                if has_tombs { survivors_tomb_seq } else { None },
                self.cfg.bloom_bits_per_key,
            )?;
            let below = &mut self.levels[level + 1];
            let at = below.partition_point(|r| r.min_key < run.min_key);
            below.insert(at, run);
        }
        // Retire the inputs, pacer-pausable between runs.
        for (i, run) in inputs.iter().enumerate() {
            if i > 0 {
                pacer::checkpoint()?;
            }
            for p in 0..run.n_pages {
                self.pool.free_page(run.first_page + p as PageId);
            }
        }
        Ok(())
    }

    /// K-way newest-wins merge. `inputs[0]` is newest; deeper inputs are
    /// mutually non-overlapping level-(l+1) runs. Range tombstones from a
    /// newer rank kill puts and point tombstones from older ranks; puts
    /// are never killed by their own run's range tombstones (the memtable
    /// applied those eagerly, so a surviving put is newer).
    fn merge_runs(&self, inputs: &[Run], drop_tombs: bool) -> StorageResult<Vec<(Key, Item)>> {
        let mut cursors: Vec<RunCursor> = inputs
            .iter()
            .map(|r| RunCursor::open(self.pool.clone(), r))
            .collect::<StorageResult<_>>()?;
        // (rank, lo, hi) of every range tombstone seen so far. Key order
        // guarantees a tombstone is seen before any key it can kill.
        let mut active_tombs: Vec<(usize, Key, Key)> = Vec::new();
        let mut out: Vec<(Key, Item)> = Vec::new();

        loop {
            // Smallest next key, preferring the newest rank on ties.
            let mut next: Option<(Key, usize)> = None;
            for (rank, cur) in cursors.iter_mut().enumerate() {
                if let Some(k) = cur.peek_key()? {
                    if next.map(|(nk, _)| k < nk).unwrap_or(true) {
                        next = Some((k, rank));
                    }
                }
            }
            let Some((key, rank)) = next else {
                return Ok(out);
            };
            let (_, item) = cursors[rank].next_item()?.expect("peeked");
            match item {
                Item::RangeDel(hi) => {
                    active_tombs.push((rank, key, hi));
                    if !drop_tombs {
                        out.push((key, Item::RangeDel(hi)));
                    }
                }
                point => {
                    // Discard shadowed versions of the same key in older
                    // ranks before they can win a later round. A run can
                    // hold several items at one key (a range tombstone
                    // anchored there plus a put), so drain each cursor.
                    for (other_rank, other) in cursors.iter_mut().enumerate().skip(rank + 1) {
                        while other.peek_key()? == Some(key) {
                            if let Some((_, Item::RangeDel(hi))) = other.next_item()? {
                                // A same-key range tombstone is not a
                                // version of the key: keep it live, at
                                // its own run's recency.
                                active_tombs.push((other_rank, key, hi));
                                if !drop_tombs {
                                    out.push((key, Item::RangeDel(hi)));
                                }
                            }
                        }
                    }
                    let killed = active_tombs
                        .iter()
                        .any(|&(tr, lo, hi)| tr < rank && lo <= key && key <= hi);
                    if killed {
                        continue;
                    }
                    match point {
                        Item::Put(rec) => out.push((key, Item::Put(rec))),
                        Item::Del => {
                            if !drop_tombs {
                                out.push((key, Item::Del));
                            }
                        }
                        Item::RangeDel(_) => unreachable!(),
                    }
                }
            }
        }
    }

    /// Force every buffered and stored tombstone through compaction until
    /// all deletes are physically purged (the "pay the whole bill now"
    /// arm the bench compares against the B-tree's eager merge). Returns
    /// the number of compactions it took.
    pub fn purge_all(&mut self) -> StorageResult<usize> {
        self.flush()?;
        let before = self.compactions;
        while let Some((l, i)) = self.find_tombstoned_run() {
            self.compact_run(l, i)?;
            self.compact_to_shape()?;
        }
        Ok(self.compactions - before)
    }

    fn find_tombstoned_run(&self) -> Option<(usize, usize)> {
        for (l, runs) in self.levels.iter().enumerate() {
            if let Some(i) = (0..runs.len()).find(|&i| runs[i].tombstones() > 0) {
                return Some((l, i));
            }
        }
        None
    }

    // ---- reads -------------------------------------------------------

    /// Runs in newest-to-oldest order: level 0 newest-first, then each
    /// deeper level (rank among non-overlapping runs is irrelevant).
    fn runs_newest_first(&self) -> impl Iterator<Item = &Run> {
        let l0 = self.levels.first().map(|l| l.as_slice()).unwrap_or(&[]);
        l0.iter().rev().chain(self.levels.iter().skip(1).flatten())
    }

    /// Newest verdict for `key`: the record if live, `None` if deleted or
    /// never inserted.
    fn lookup_raw(&mut self, key: Key) -> StorageResult<Option<Vec<u8>>> {
        match self.mem.get(key) {
            Some(MemEntry::Put(rec)) => return Ok(Some(rec)),
            Some(MemEntry::Del) => return Ok(None),
            None => {}
        }
        let pool = self.pool.clone();
        for run in self.runs_newest_first() {
            match run.search(&pool, key)? {
                Some(Item::Put(rec)) => return Ok(Some(rec)),
                Some(Item::Del) => return Ok(None),
                Some(Item::RangeDel(_)) => unreachable!("search skips range tombstones"),
                None => {
                    // No point version here; a covering range tombstone
                    // in this run still buries every older level.
                    if run
                        .range_tombs
                        .iter()
                        .any(|&(lo, hi)| lo <= key && key <= hi)
                    {
                        return Ok(None);
                    }
                }
            }
        }
        Ok(None)
    }

    /// Live records with `lo <= key <= hi`, key-ascending.
    fn range_raw(&mut self, lo: Key, hi: Key) -> StorageResult<Vec<(Key, Vec<u8>)>> {
        // Winner per key = the version from the newest rank; then range
        // tombstones from strictly newer ranks kill older winners.
        let mut winners: std::collections::BTreeMap<Key, (usize, Item)> =
            std::collections::BTreeMap::new();
        let mut tombs: Vec<(usize, Key, Key)> = Vec::new();
        let mut rank = 0usize;

        for (k, e) in self.mem.range(lo, hi) {
            let item = match e {
                MemEntry::Put(rec) => Item::Put(rec),
                MemEntry::Del => Item::Del,
            };
            winners.insert(k, (rank, item));
        }
        for &(tlo, thi) in self.mem.range_tombs() {
            if tlo <= hi && thi >= lo {
                tombs.push((rank, tlo, thi));
            }
        }

        let pool = self.pool.clone();
        for run in self.runs_newest_first() {
            rank += 1;
            for (k, item) in run.scan_range(&pool, lo, hi)? {
                winners.entry(k).or_insert((rank, item));
            }
            for &(tlo, thi) in &run.range_tombs {
                if tlo <= hi && thi >= lo {
                    tombs.push((rank, tlo, thi));
                }
            }
        }

        let mut out = Vec::new();
        for (k, (r, item)) in winners {
            let killed = tombs
                .iter()
                .any(|&(tr, tlo, thi)| tr < r && tlo <= k && k <= thi);
            if killed {
                continue;
            }
            if let Item::Put(rec) = item {
                out.push((k, rec));
            }
        }
        Ok(out)
    }

    // ---- audits ------------------------------------------------------

    /// Structural self-audit: run metadata vs pages, level invariants,
    /// and page-catalog agreement. Clean report = internally consistent.
    pub fn audit_structure(&mut self) -> StorageResult<AuditReport> {
        let mut report = AuditReport::default();
        let pool = self.pool.clone();
        for (l, runs) in self.levels.iter().enumerate() {
            for (i, run) in runs.iter().enumerate() {
                let name = format!("lsm run L{l}#{i}");
                if run.fences.len() != run.n_pages {
                    report.push(&name, "fence count != page count");
                }
                if run.fences.windows(2).any(|w| w[0] > w[1]) {
                    report.push(&name, "fence keys out of order");
                }
                let items = run.read_all(&pool)?;
                if items.windows(2).any(|w| w[0].0 > w[1].0) {
                    report.push(&name, "items out of key order on disk");
                }
                if items.len() != run.items() {
                    report.push(
                        &name,
                        format!(
                            "metadata counts {} items, pages hold {}",
                            run.items(),
                            items.len()
                        ),
                    );
                }
                for (k, item) in &items {
                    if !matches!(item, Item::RangeDel(_)) && !run.bloom.may_contain(*k) {
                        report.push(&name, format!("bloom false negative for key {k}"));
                    }
                }
                if let Some((first, _)) = items.first() {
                    if *first != run.min_key {
                        report.push(&name, "min_key disagrees with first item");
                    }
                }
                if run.tombstones() > 0 && run.oldest_tomb_seq.is_none() {
                    report.push(&name, "tombstones present but oldest_tomb_seq unset");
                }
                if run.tombstones() == 0 && run.oldest_tomb_seq.is_some() {
                    report.push(&name, "tombstone-free but oldest_tomb_seq set");
                }
            }
            if l >= 1 {
                for w in runs.windows(2) {
                    if w[1].min_key <= w[0].max_key {
                        report.push(
                            format!("lsm level {l}"),
                            format!(
                                "runs overlap: [{}, {}] then [{}, {}]",
                                w[0].min_key, w[0].max_key, w[1].min_key, w[1].max_key
                            ),
                        );
                    }
                }
            }
        }
        report.findings.extend(self.audit_pages().findings);
        Ok(report)
    }

    /// Page-catalog agreement: the catalog's idea of this structure's
    /// pages must be exactly the union of live run extents.
    pub fn audit_pages(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let mut expected: Vec<PageId> = self
            .levels
            .iter()
            .flatten()
            .flat_map(|r| (0..r.n_pages).map(move |p| r.first_page + p as PageId))
            .collect();
        expected.sort_unstable();
        if expected.windows(2).any(|w| w[0] == w[1]) {
            report.push("lsm catalog", "two runs claim the same page");
        }
        let mut actual = self.pool.catalog().pages_of(self.owner);
        actual.sort_unstable();
        if expected != actual {
            let missing = expected.iter().filter(|p| !actual.contains(p)).count();
            let stray = actual.iter().filter(|p| !expected.contains(p)).count();
            report.push(
                "lsm catalog",
                format!(
                    "catalog owns {} pages, runs cover {} ({} missing from catalog, {} stray)",
                    actual.len(),
                    expected.len(),
                    missing,
                    stray
                ),
            );
        }
        report
    }
}

impl TableEngine for LsmTable {
    fn name(&self) -> &'static str {
        "lsm"
    }

    fn schema(&self) -> Schema {
        self.schema
    }

    fn insert(&mut self, tuple: &Tuple) -> DbResult<()> {
        let key = tuple.attr(0);
        if self.lookup_raw(key).map_err(DbError::Storage)?.is_some() {
            return Err(DbError::DuplicateKey { attr: 0, key });
        }
        let rec = self.schema.encode(tuple)?;
        self.put_raw(key, rec).map_err(DbError::Storage)
    }

    fn bulk_load(&mut self, rows: &[Tuple]) -> DbResult<()> {
        if self.mem.is_empty() && self.levels.iter().all(Vec::is_empty) && !rows.is_empty() {
            // Fast path mirroring the B-tree's bottom-up build: one
            // sorted run written straight into level 1.
            let mut items = Vec::with_capacity(rows.len());
            for t in rows {
                items.push((t.attr(0), Item::Put(self.schema.encode(t)?)));
            }
            items.sort_by_key(|(k, _)| *k);
            if let Some(w) = items.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(DbError::DuplicateKey {
                    attr: 0,
                    key: w[0].0,
                });
            }
            self.seq += 1;
            let chunks = partition_items(items, self.schema.record_len, self.cfg.max_run_pages);
            let mut runs = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                runs.push(
                    Run::write(
                        &self.pool,
                        self.owner,
                        self.schema.record_len,
                        &chunk,
                        self.seq,
                        None,
                        self.cfg.bloom_bits_per_key,
                    )
                    .map_err(DbError::Storage)?,
                );
            }
            // Place the partitions at the shallowest level that can hold
            // them all, leaving level 0 free for flushes.
            let mut level = 1;
            while self.max_runs(level) < runs.len() {
                level += 1;
            }
            self.levels = vec![Vec::new(); level + 1];
            self.levels[level] = runs;
            self.flushes += 1;
            return Ok(());
        }
        for t in rows {
            self.insert(t)?;
        }
        Ok(())
    }

    fn lookup(&mut self, key: Key) -> DbResult<Option<Tuple>> {
        Ok(self
            .lookup_raw(key)
            .map_err(DbError::Storage)?
            .map(|rec| self.schema.decode(&rec)))
    }

    fn range_lookup(&mut self, lo: Key, hi: Key) -> DbResult<Vec<Tuple>> {
        Ok(self
            .range_raw(lo, hi)
            .map_err(DbError::Storage)?
            .into_iter()
            .map(|(_, rec)| self.schema.decode(&rec))
            .collect())
    }

    fn bulk_delete(&mut self, keys: &[Key]) -> DbResult<RunReport> {
        let pool = self.pool.clone();
        let (deleted, mut report) = measure(&pool, "lsm tombstone", || {
            let mut deleted = 0;
            for (i, &key) in keys.iter().enumerate() {
                if i > 0 {
                    pacer::checkpoint()?;
                }
                // Look before writing: absent keys get no ghost
                // tombstone and the deleted count stays exact.
                if self.lookup_raw(key)?.is_some() {
                    self.delete_raw(key)?;
                    deleted += 1;
                }
            }
            self.flush()?;
            Ok(deleted)
        })
        .map_err(DbError::Storage)?;
        report.deleted = deleted;
        Ok(report)
    }

    fn delete_range(&mut self, lo: Key, hi: Key) -> DbResult<RunReport> {
        let pool = self.pool.clone();
        let (deleted, mut report) = measure(&pool, "lsm range tombstone", || {
            let deleted = self.range_raw(lo, hi)?.len();
            self.delete_range_raw(lo, hi)?;
            self.flush()?;
            Ok(deleted)
        })
        .map_err(DbError::Storage)?;
        report.deleted = deleted;
        Ok(report)
    }

    fn stats(&mut self) -> DbResult<EngineStats> {
        let rows = self
            .range_raw(Key::MIN, Key::MAX)
            .map_err(DbError::Storage)?
            .len();
        let s = self.lsm_stats();
        Ok(EngineStats {
            rows,
            pages: s.pages,
            detail: format!(
                "{} levels, {} runs, {} tombstones, {} compactions",
                s.levels, s.runs, s.tombstones, s.compactions
            ),
        })
    }

    fn audit_dump(&mut self) -> DbResult<Vec<Tuple>> {
        let mut rows: Vec<Tuple> = self.range_lookup(Key::MIN, Key::MAX)?;
        rows.sort_by(|x, y| x.attrs.cmp(&y.attrs));
        Ok(rows)
    }

    fn audit_self(&mut self) -> DbResult<AuditReport> {
        self.audit_structure().map_err(DbError::Storage)
    }
}

// Keep the page-size assumption visible at compile time: a record plus
// item header must fit a page, and schemas in this workspace are small.
const _: () = assert!(PAGE_SIZE > 512);

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: u64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![i * 2, i % 7, i])).collect()
    }

    fn table(n: u64) -> LsmTable {
        let mut t = LsmTable::new(Schema::new(3, 64), 1 << 20, LsmConfig::tiny());
        t.bulk_load(&rows(n)).unwrap();
        t
    }

    #[test]
    fn keyed_contract_and_duplicates() {
        let mut t = table(500);
        assert_eq!(t.lookup(10).unwrap(), Some(Tuple::new(vec![10, 5, 5])));
        assert_eq!(t.lookup(11).unwrap(), None);
        let err = t.insert(&Tuple::new(vec![10, 0, 0])).unwrap_err();
        assert_eq!(err, DbError::DuplicateKey { attr: 0, key: 10 });
        let mid = t.range_lookup(100, 110).unwrap();
        assert_eq!(
            mid.iter().map(|r| r.attr(0)).collect::<Vec<_>>(),
            vec![100, 102, 104, 106, 108, 110]
        );
        assert_eq!(t.scan().unwrap().len(), 500);
        assert!(t.audit_self().unwrap().is_clean());
    }

    #[test]
    fn inserts_flush_and_compact_with_clean_audits() {
        let mut t = LsmTable::new(Schema::new(3, 64), 1 << 20, LsmConfig::tiny());
        for r in rows(600) {
            t.insert(&r).unwrap();
        }
        let s = t.lsm_stats();
        assert!(s.flushes >= 4, "tiny memtable must have flushed: {s:?}");
        assert!(s.compactions >= 1, "fanout 3 must have compacted: {s:?}");
        assert_eq!(t.scan().unwrap().len(), 600);
        let report = t.audit_self().unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn deletes_are_shadowed_then_purged() {
        let mut t = table(400);
        let doomed: Vec<Key> = (0..100).map(|i| i * 8).collect();
        let report = t.bulk_delete(&doomed).unwrap();
        assert_eq!(report.deleted, 100);
        assert_eq!(report.strategy, "lsm tombstone");
        for &k in &doomed {
            assert_eq!(t.lookup(k).unwrap(), None, "key {k} must read deleted");
        }
        assert_eq!(t.scan().unwrap().len(), 300);

        // The purge deadline forces tombstones to the bottom where they
        // are dropped, physically reclaiming the deleted rows.
        for _ in 0..10 {
            t.insert(&Tuple::new(vec![10_001 + t.seq, 0, 0])).unwrap();
            t.flush().unwrap();
        }
        let s = t.lsm_stats();
        assert_eq!(s.tombstones, 0, "deadline must purge tombstones: {s:?}");
        assert_eq!(t.scan().unwrap().len(), 310);
        let report = t.audit_self().unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn ghost_deletes_write_no_tombstones() {
        let mut t = table(50);
        let report = t.bulk_delete(&[1, 3, 5, 999_999]).unwrap();
        assert_eq!(report.deleted, 0, "odd keys were never inserted");
        assert_eq!(t.lsm_stats().tombstones, 0);
    }

    #[test]
    fn range_delete_kills_old_runs_and_reinserts_resurrect() {
        let mut t = table(500);
        let report = t.delete_range(100, 298).unwrap();
        assert_eq!(report.deleted, 100);
        assert_eq!(t.lookup(200).unwrap(), None);
        assert_eq!(t.scan().unwrap().len(), 400);

        t.insert(&Tuple::new(vec![200, 9, 9])).unwrap();
        assert_eq!(t.lookup(200).unwrap(), Some(Tuple::new(vec![200, 9, 9])));
        assert_eq!(t.scan().unwrap().len(), 401);

        // Push everything through compaction and re-check.
        t.flush().unwrap();
        for _ in 0..8 {
            t.insert(&Tuple::new(vec![20_000 + t.seq, 0, 0])).unwrap();
            t.flush().unwrap();
        }
        assert_eq!(t.lookup(200).unwrap(), Some(Tuple::new(vec![200, 9, 9])));
        assert_eq!(t.lookup(202).unwrap(), None);
        let report = t.audit_self().unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn inverted_range_delete_is_a_noop_like_the_btree() {
        let mut t = table(100);
        let report = t.delete_range(10, 5).unwrap();
        assert_eq!(report.deleted, 0, "inverted range covers nothing");
        assert_eq!(t.range_lookup(10, 5).unwrap(), vec![]);
        assert_eq!(t.scan().unwrap().len(), 100);
        assert!(t.audit_self().unwrap().is_clean());
    }

    #[test]
    fn purge_all_pays_the_whole_bill() {
        let mut t = table(400);
        t.bulk_delete(&(0..150).map(|i| i * 4).collect::<Vec<_>>())
            .unwrap();
        let compactions = t.purge_all().unwrap();
        assert!(compactions > 0, "tombstones were buffered, purge must work");
        assert_eq!(t.lsm_stats().tombstones, 0);
        assert_eq!(t.scan().unwrap().len(), 250);
        let report = t.audit_self().unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn levels_are_partitioned_into_bounded_runs() {
        let t = table(2000);
        let s = t.lsm_stats();
        assert!(s.runs > 4, "2000 rows at 2 pages/run must partition: {s:?}");
        for runs in &t.levels {
            for run in runs {
                // One carried range tombstone may spill a page past the cap.
                assert!(run.n_pages <= t.cfg.max_run_pages + 1, "{}", run.n_pages);
            }
        }
    }

    #[test]
    fn catalog_audit_catches_a_leak() {
        let mut t = table(300);
        t.bulk_delete(&[0, 2, 4]).unwrap();
        assert!(t.audit_pages().is_clean());
        // Forget a run without freeing its pages: the catalog now owns
        // pages no live run covers.
        let run = t
            .levels
            .iter_mut()
            .find(|l| !l.is_empty())
            .unwrap()
            .remove(0);
        let report = t.audit_pages();
        assert!(!report.is_clean());
        assert!(report.render().contains("stray"), "{}", report.render());
        // Restore so drop paths stay consistent.
        t.levels[0].push(run);
    }
}
