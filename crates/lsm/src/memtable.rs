//! The mutable in-memory level.
//!
//! A sorted map from key to the newest in-memory version (a put or a
//! point tombstone) plus the pending range tombstones. Writes are
//! upserts: a put over a tombstone resurrects the key, a tombstone over a
//! put buries it — the flush emits only the *newest* version per key,
//! which is all the run format stores.
//!
//! A range delete is applied eagerly to the memtable's own entries (the
//! tombstone is newer than all of them, so they are simply dropped) and
//! recorded as a pending `[lo, hi]` tombstone that the flush writes into
//! the run to shadow everything in the older levels.

use std::collections::BTreeMap;

use bd_btree::Key;

use crate::run::Item;

/// One buffered version of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemEntry {
    /// The key holds this encoded record.
    Put(Vec<u8>),
    /// The key is deleted.
    Del,
}

/// The in-memory write buffer: newest version per key + pending range
/// tombstones.
#[derive(Debug, Clone, Default)]
pub struct Memtable {
    entries: BTreeMap<Key, MemEntry>,
    range_tombs: Vec<(Key, Key)>,
}

impl Memtable {
    /// Empty memtable.
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Buffered items (point entries + range tombstones) — the flush
    /// trigger compares this against the configured capacity.
    pub fn len(&self) -> usize {
        self.entries.len() + self.range_tombs.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.range_tombs.is_empty()
    }

    /// Number of buffered tombstones (point + range).
    pub fn tombstones(&self) -> usize {
        self.range_tombs.len()
            + self
                .entries
                .values()
                .filter(|e| matches!(e, MemEntry::Del))
                .count()
    }

    /// Upsert a record.
    pub fn put(&mut self, key: Key, record: Vec<u8>) {
        self.entries.insert(key, MemEntry::Put(record));
    }

    /// Bury a key under a point tombstone.
    pub fn delete(&mut self, key: Key) {
        self.entries.insert(key, MemEntry::Del);
    }

    /// Bury `lo ..= hi`: drops the memtable's own entries in the range
    /// (the tombstone is newer than all of them) and records the range
    /// tombstone for the older levels. An inverted range (`lo > hi`) is
    /// empty and a no-op, matching the B-tree engine's `delete_range`.
    pub fn delete_range(&mut self, lo: Key, hi: Key) {
        if lo > hi {
            return;
        }
        let doomed: Vec<Key> = self.entries.range(lo..=hi).map(|(k, _)| *k).collect();
        for k in doomed {
            self.entries.remove(&k);
        }
        self.range_tombs.push((lo, hi));
    }

    /// The newest buffered version of `key`, if any. `None` means the
    /// memtable has no opinion — unless a buffered range tombstone covers
    /// the key, in which case the verdict is `Some(Del)`.
    pub fn get(&self, key: Key) -> Option<MemEntry> {
        if let Some(e) = self.entries.get(&key) {
            return Some(e.clone());
        }
        if self
            .range_tombs
            .iter()
            .any(|&(lo, hi)| lo <= key && key <= hi)
        {
            return Some(MemEntry::Del);
        }
        None
    }

    /// The buffered range tombstones, in insertion order.
    pub fn range_tombs(&self) -> &[(Key, Key)] {
        &self.range_tombs
    }

    /// Point entries in `lo ..= hi`, key-ascending; empty when `lo > hi`.
    pub fn range(&self, lo: Key, hi: Key) -> Vec<(Key, MemEntry)> {
        if lo > hi {
            return Vec::new();
        }
        self.entries
            .range(lo..=hi)
            .map(|(k, e)| (*k, e.clone()))
            .collect()
    }

    /// Drain into the sorted item list a flush writes as a level-0 run:
    /// one item per point entry, plus one range-tombstone item at each
    /// `lo`. Returns an empty vec when nothing is buffered.
    pub fn drain_sorted(&mut self) -> Vec<(Key, Item)> {
        let mut items: Vec<(Key, Item)> = std::mem::take(&mut self.entries)
            .into_iter()
            .map(|(k, e)| match e {
                MemEntry::Put(rec) => (k, Item::Put(rec)),
                MemEntry::Del => (k, Item::Del),
            })
            .collect();
        for (lo, hi) in std::mem::take(&mut self.range_tombs) {
            items.push((lo, Item::RangeDel(hi)));
        }
        items.sort_by_key(|(k, _)| *k);
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_bury_resurrect_and_range_kill() {
        let mut m = Memtable::new();
        m.put(5, vec![1]);
        m.put(7, vec![2]);
        m.delete(5);
        assert_eq!(m.get(5), Some(MemEntry::Del));
        m.put(5, vec![3]);
        assert_eq!(m.get(5), Some(MemEntry::Put(vec![3])));

        m.delete_range(4, 6);
        assert_eq!(m.get(5), Some(MemEntry::Del), "range tombstone covers 5");
        assert_eq!(m.get(7), Some(MemEntry::Put(vec![2])));
        assert_eq!(m.get(4), Some(MemEntry::Del), "covers absent keys too");
        assert_eq!(m.get(9), None);

        let items = m.drain_sorted();
        assert!(m.is_empty());
        assert_eq!(items, vec![(4, Item::RangeDel(6)), (7, Item::Put(vec![2]))]);
    }

    #[test]
    fn inverted_ranges_are_empty_no_ops() {
        let mut m = Memtable::new();
        m.put(5, vec![1]);
        m.delete_range(10, 5);
        assert_eq!(m.get(5), Some(MemEntry::Put(vec![1])), "nothing deleted");
        assert!(m.range_tombs().is_empty(), "no tombstone recorded");
        assert!(m.range(10, 5).is_empty());
        assert_eq!(m.len(), 1);
    }
}
