#![warn(missing_docs)]

//! Delete-aware LSM table engine.
//!
//! The paper's design-space argument — horizontal vs vertical vs
//! drop-and-create — was made over B-tree storage in 2001. On
//! log-structured storage the same question reads differently: a bulk
//! delete is not a merge against a live structure but a batch of
//! *tombstones* (point and range) that shadow older versions until
//! compaction physically purges them. This crate replays the argument on
//! an LSM table built over the same simulated disk, buffer pool, page
//! catalog and cost model as the B-tree engine, so the two are directly
//! comparable under [`bd_core::measure`] and differentially auditable via
//! [`bd_core::engine::audit_engine_equivalence`].
//!
//! The moving parts:
//!
//! * [`Memtable`] — the mutable in-memory level: a sorted map of puts and
//!   point tombstones, plus the pending range tombstones.
//! * [`Run`] — an immutable sorted run on contiguous pages, with per-page
//!   fence keys, a bloom-style filter over its keys, and counters for the
//!   delete-awareness heuristics (tombstone count, oldest tombstone age).
//! * [`LsmTable`] — the engine: leveled structure (level 0 holds
//!   overlapping flushed memtables, deeper levels hold non-overlapping
//!   runs), newest-wins reads through fences and filters, and leveled
//!   compaction whose **victim selection is delete-aware** à la Lethe's
//!   FADE: runs are prioritised by tombstone count weighted by tombstone
//!   age, and a tombstone older than [`LsmConfig::purge_deadline`] flushes
//!   forces its run down even when the level is under capacity, so every
//!   delete is physically purged within a bounded number of compactions.
//!
//! Durability is out of scope for this engine (no WAL integration):
//! [`Run`] metadata lives in memory and pages live on the shared
//! [`SimDisk`](bd_storage::SimDisk), which is exactly what the bench and
//! the differential audits need. Crash-safe LSM manifests are future
//! work; the page *catalog* is still maintained on every allocate/free so
//! catalog audits and structure-precise accounting hold.

mod bloom;
mod memtable;
mod run;
mod table;

pub use bloom::Bloom;
pub use memtable::Memtable;
pub use run::{Item, Run, RunCursor};
pub use table::{LsmStats, LsmTable};

/// Tuning knobs for the LSM engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmConfig {
    /// Entries (puts + tombstones) buffered in the memtable before a
    /// flush to level 0.
    pub memtable_capacity: usize,
    /// Shape factor: a level holds at most this many runs before it must
    /// compact one of them down.
    pub fanout: usize,
    /// The FADE knob: the maximum age, in flush/compaction sequence
    /// ticks, a tombstone may survive before its run is force-compacted
    /// regardless of level occupancy. Smaller = deletes are physically
    /// purged sooner at the price of extra write amplification.
    pub purge_deadline: u64,
    /// Bloom-filter budget per key in each run's filter.
    pub bloom_bits_per_key: usize,
    /// Maximum pages per run: bulk loads and merge outputs are split into
    /// partitions of at most this size, so one compaction never rewrites
    /// more than the victim plus the overlapping partitions (the
    /// SST-file granularity real leveled LSMs compact at).
    pub max_run_pages: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_capacity: 256,
            fanout: 4,
            purge_deadline: 8,
            bloom_bits_per_key: 8,
            max_run_pages: 128,
        }
    }
}

impl LsmConfig {
    /// Small memtable/fanout/partition configuration that exercises
    /// flushes, partitioned levels and multi-level compaction even on
    /// tiny test workloads.
    pub fn tiny() -> Self {
        LsmConfig {
            memtable_capacity: 64,
            fanout: 3,
            purge_deadline: 4,
            bloom_bits_per_key: 8,
            max_run_pages: 2,
        }
    }
}
