//! Foreground traffic for the *online* bulk-delete experiments.
//!
//! The paper's §3.1 motivates concurrency control so updater transactions
//! can run "while bulk deletion is still in progress"; this module supplies
//! the updaters. [`run_with_foreground`] executes one bulk delete — either
//! the blocking offline statement or the chunked live path — while a pool
//! of foreground threads hammers the table with point reads, range scans,
//! and inserts, timing every operation into a per-class
//! [`LatencyHistogram`](bd_core::LatencyHistogram). The resulting
//! [`ForegroundReport`] is the experiment's deliverable: the foreground
//! p50/p95/p99 under an offline delete (one giant exclusive span) versus
//! the live delete (many short ones).
//!
//! Every foreground operation also asserts the online invariants as it
//! runs: a survivor key reads back exactly once, a victim at most once, a
//! range scan returns each in-range survivor exactly once and nothing
//! outside the range, and inserts use fresh keys outside the generated
//! domain (generated values live in `[0, 10·n_rows)`).
//!
//! A lock-wait timeout is not a failure here: against the offline driver a
//! foreground operation can stall behind the delete's exclusive span
//! longer than the deadlock-suspicion timeout. The operation retries until
//! the lock grants, and its recorded latency covers the *entire* wait —
//! that stall is precisely what the experiment measures.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bd_btree::Key;
use bd_core::{ForegroundReport, Tuple};
use bd_storage::{Pacer, Rid};
use bd_txn::{PropagationMode, TxnDb, TxnResult};

use crate::Workload;

/// How [`run_with_foreground`] drives the bulk delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteDriver {
    /// The §3.1 statement as-is: one exclusive phase over table + probe +
    /// unique indices, then background propagation. Foreground operations
    /// stall behind the exclusive phase — the "before" row of the
    /// experiment.
    Offline(PropagationMode),
    /// The chunked live path ([`TxnDb::bulk_delete_live`]): short
    /// exclusive spans, pacer checkpoints between and inside them.
    Live {
        /// Propagation mode for the offline non-unique indices.
        mode: PropagationMode,
        /// Keys per chunk (per exclusive span).
        chunk: usize,
    },
}

/// Relative weights of the foreground operation classes.
#[derive(Debug, Clone, Copy)]
pub struct FgMix {
    /// Point reads through the probe index.
    pub point_reads: u32,
    /// Batch-wise range scans through the probe index.
    pub range_scans: u32,
    /// Single-row inserts with fresh keys.
    pub inserts: u32,
}

impl Default for FgMix {
    fn default() -> Self {
        FgMix {
            point_reads: 6,
            range_scans: 2,
            inserts: 2,
        }
    }
}

impl FgMix {
    fn total(&self) -> u32 {
        (self.point_reads + self.range_scans + self.inserts).max(1)
    }
}

/// Foreground-pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct FgConfig {
    /// Number of foreground threads.
    pub threads: usize,
    /// Operation mix.
    pub mix: FgMix,
    /// Key-space width of each range scan (keys are multiples of 10, so a
    /// width of `w` covers about `w / 10` rows).
    pub range_width: Key,
    /// Minimum operations per thread: the pool keeps running until the
    /// delete finishes *and* every thread reached this floor, so the
    /// histograms are never empty even against a fast delete.
    pub min_ops: usize,
    /// RNG seed for the per-thread operation streams.
    pub seed: u64,
}

impl Default for FgConfig {
    fn default() -> Self {
        FgConfig {
            threads: 4,
            mix: FgMix::default(),
            range_width: 1_000,
            min_ops: 50,
            seed: 0xF0,
        }
    }
}

/// Result of one [`run_with_foreground`] experiment.
#[derive(Debug)]
pub struct LiveRun {
    /// Per-class foreground latency histograms.
    pub foreground: ForegroundReport,
    /// Rows the bulk delete removed.
    pub deleted: usize,
    /// Exclusive spans the delete used (1 for [`DeleteDriver::Offline`]).
    pub chunks: usize,
    /// Wall time of the delete statement, milliseconds.
    pub delete_ms: f64,
    /// Rows the foreground inserted, for feeding a
    /// [`ShadowDb`](bd_core::ShadowDb) model after the run.
    pub inserted: Vec<(Rid, Tuple)>,
}

/// Fresh-key base: generated attribute values are `10 * i` for
/// `i < n_rows`, so anything at or above `10 * n_rows` plus a per-thread
/// stripe is collision-free against the table and the other threads.
fn fresh_tuple(n_attrs: usize, n_rows: usize, thread: usize, i: usize) -> Tuple {
    let base = 10 * n_rows as Key + 1 + thread as Key * 10_000_000;
    Tuple::new(
        (0..n_attrs)
            .map(|a| base + 2 * i as Key + a as Key * 100_000_000)
            .collect(),
    )
}

/// Run `op` to completion, retrying lock-wait timeouts (each attempt is a
/// fresh transaction). Any other error is a correctness bug and panics.
fn retry<T>(mut op: impl FnMut() -> TxnResult<T>) -> T {
    loop {
        match op() {
            Ok(v) => return v,
            Err(e) if e.is_lock_timeout() => continue,
            Err(e) => panic!("foreground operation failed: {e}"),
        }
    }
}

/// Run one bulk delete with live foreground traffic and time every
/// foreground operation.
///
/// The foreground pool starts first, the delete runs on its own thread
/// (paced by `pacer` when `driver` is [`DeleteDriver::Live`]), and the
/// pool drains once the delete finishes and every thread has met
/// [`FgConfig::min_ops`]. Foreground invariant violations panic — they are
/// correctness bugs, not measurements.
pub fn run_with_foreground(
    tdb: &TxnDb,
    w: &Workload,
    victims: &[Key],
    driver: DeleteDriver,
    cfg: FgConfig,
    pacer: &Pacer,
) -> TxnResult<LiveRun> {
    let tid = w.tid;
    let n_rows = w.spec.n_rows;
    let n_attrs = w.spec.n_attrs;
    let victim_set: HashSet<Key> = victims.iter().copied().collect();
    let done = AtomicBool::new(false);

    let (delete_res, delete_ms, fg) = std::thread::scope(|s| {
        let bulk = {
            let done = &done;
            s.spawn(move || {
                let t0 = Instant::now();
                let res: TxnResult<(usize, usize)> = match driver {
                    DeleteDriver::Offline(mode) => tdb
                        .bulk_delete(tid, 0, victims, mode)
                        .map(|deleted| (deleted, 1)),
                    DeleteDriver::Live { mode, chunk } => tdb
                        .bulk_delete_live(tid, 0, victims, mode, chunk, pacer)
                        .map(|stats| (stats.deleted, stats.chunks)),
                };
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                done.store(true, Ordering::Release);
                (res, ms)
            })
        };
        let workers: Vec<_> = (0..cfg.threads.max(1))
            .map(|t| {
                let done = &done;
                let victim_set = &victim_set;
                let a_values = &w.a_values;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64) << 17);
                    let mut report = ForegroundReport::new();
                    let mut inserted = Vec::new();
                    let mut ops = 0usize;
                    let mut next_insert = 0usize;
                    while ops < cfg.min_ops || !done.load(Ordering::Acquire) {
                        let dice = rng.gen_range(0..cfg.mix.total());
                        if dice < cfg.mix.point_reads {
                            let key = a_values[rng.gen_range(0..a_values.len())];
                            let t0 = Instant::now();
                            let rows = retry(|| {
                                let txn = tdb.begin();
                                let r = tdb.read(txn, tid, 0, key);
                                tdb.commit(txn);
                                r
                            });
                            report
                                .class_mut("point_read")
                                .record(t0.elapsed().as_micros() as u64);
                            if victim_set.contains(&key) {
                                assert!(rows.len() <= 1, "victim {key} duplicated");
                            } else {
                                assert_eq!(rows.len(), 1, "survivor {key} unreadable");
                            }
                        } else if dice < cfg.mix.point_reads + cfg.mix.range_scans {
                            let span = 10 * n_rows as Key;
                            let lo = rng.gen_range(0..span.saturating_sub(cfg.range_width).max(1));
                            let hi = lo + cfg.range_width;
                            let t0 = Instant::now();
                            let rows = retry(|| {
                                let txn = tdb.begin();
                                let r = tdb.range_read(txn, tid, 0, lo, hi);
                                tdb.commit(txn);
                                r
                            });
                            report
                                .class_mut("range_scan")
                                .record(t0.elapsed().as_micros() as u64);
                            let mut seen = HashSet::new();
                            for row in &rows {
                                let k = row.attr(0);
                                assert!((lo..=hi).contains(&k), "scan leaked key {k}");
                                assert!(seen.insert(k), "scan duplicated key {k}");
                            }
                        } else {
                            let tuple = fresh_tuple(n_attrs, n_rows, t, next_insert);
                            next_insert += 1;
                            let t0 = Instant::now();
                            let rid = retry(|| {
                                let txn = tdb.begin();
                                let r = tdb.insert(txn, tid, &tuple);
                                tdb.commit(txn);
                                r
                            });
                            report
                                .class_mut("insert")
                                .record(t0.elapsed().as_micros() as u64);
                            inserted.push((rid, tuple));
                        }
                        ops += 1;
                    }
                    (report, inserted)
                })
            })
            .collect();
        let (res, ms) = bulk.join().expect("delete thread panicked");
        let mut fg = ForegroundReport::new();
        let mut inserted = Vec::new();
        for h in workers {
            let (rep, ins) = h.join().expect("foreground thread panicked");
            fg.merge(&rep);
            inserted.extend(ins);
        }
        (res, ms, (fg, inserted))
    });

    let (deleted, chunks) = delete_res?;
    let (foreground, inserted) = fg;
    Ok(LiveRun {
        foreground,
        deleted,
        chunks,
        delete_ms,
        inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TableSpec;
    use bd_core::{Database, DatabaseConfig, IndexDef, ShadowDb};

    fn setup(n_rows: usize) -> (std::sync::Arc<TxnDb>, Workload) {
        let mut db = Database::new(DatabaseConfig::with_total_memory(4 << 20));
        let w = TableSpec::tiny(n_rows).build(&mut db).unwrap();
        w.attach_index(&mut db, IndexDef::secondary(0).unique())
            .unwrap();
        w.attach_index(&mut db, IndexDef::secondary(1)).unwrap();
        (TxnDb::new(db), w)
    }

    fn check_run(driver: DeleteDriver) {
        let (tdb, w) = setup(2000);
        let mut shadow = tdb.with(|db| ShadowDb::mirror_of(db, w.tid).unwrap());
        let victims = w.delete_set(0.25, 11);
        let cfg = FgConfig {
            threads: 3,
            min_ops: 40,
            ..FgConfig::default()
        };
        let run = run_with_foreground(&tdb, &w, &victims, driver, cfg, &Pacer::new()).unwrap();
        assert_eq!(run.deleted, victims.len());
        assert!(run.foreground.total_ops() >= 3 * 40);
        assert!(run.foreground.class("point_read").is_some());
        shadow.delete_in(w.tid, 0, &victims);
        for (rid, t) in run.inserted {
            shadow.insert(w.tid, rid, t);
        }
        let report = tdb.with(|db| shadow.diff(db, w.tid).unwrap());
        assert!(report.is_clean(), "{driver:?}: {report}");
    }

    #[test]
    fn offline_driver_matches_model() {
        check_run(DeleteDriver::Offline(PropagationMode::SideFile));
    }

    #[test]
    fn live_driver_matches_model() {
        let driver = DeleteDriver::Live {
            mode: PropagationMode::SideFile,
            chunk: 64,
        };
        check_run(driver);
    }

    #[test]
    fn live_run_reports_chunk_count() {
        let (tdb, w) = setup(1000);
        let victims = w.delete_set(0.2, 5);
        let run = run_with_foreground(
            &tdb,
            &w,
            &victims,
            DeleteDriver::Live {
                mode: PropagationMode::Direct,
                chunk: 50,
            },
            FgConfig {
                threads: 2,
                min_ops: 10,
                ..FgConfig::default()
            },
            &Pacer::new(),
        )
        .unwrap();
        assert_eq!(run.chunks, victims.len().div_ceil(50));
        assert!(run.delete_ms >= 0.0);
        tdb.with(|db| db.check_consistency(w.tid).unwrap());
    }
}
