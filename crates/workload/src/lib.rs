#![warn(missing_docs)]

//! Synthetic workloads reproducing the paper's benchmark environment
//! (§4.1).
//!
//! "The database consisted of one table R with eleven attributes A, B, ...,
//! K. In all experiments, table R has initially 1,000,000 tuples, each of
//! size 512 bytes. The first 10 attributes are random integers and the last
//! attribute (i.e., K) is a string field containing garbage data for
//! padding. Each attribute is free of duplicates. ... we generate a table D
//! with random A values" deleting 5–20 % of the records.
//!
//! [`TableSpec`] builds that table (optionally physically sorted by one
//! attribute — "table R is sorted according to attribute A" in Experiment
//! 5); [`Workload::delete_set`] draws the delete list `D`. The default
//! scale is 1/10 of the paper's (100,000 rows) with every ratio preserved;
//! `TableSpec::paper_full()` is the original size.

pub mod live;

pub use live::{run_with_foreground, DeleteDriver, FgConfig, FgMix, LiveRun};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use bd_core::{Database, DbResult, IndexDef, Schema, TableId, Tuple};

use bd_btree::Key;

/// Shape of the synthetic table `R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableSpec {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of integer attributes (paper: 10).
    pub n_attrs: usize,
    /// Record size in bytes including padding (paper: 512).
    pub record_len: usize,
    /// RNG seed (the workload is fully deterministic).
    pub seed: u64,
    /// Physically sort the table by this attribute (Experiment 5's
    /// clustered layout).
    pub cluster_by: Option<usize>,
}

impl TableSpec {
    /// Default reproduction scale: 100,000 rows (1/10 of the paper, all
    /// ratios preserved).
    pub fn paper_scaled() -> Self {
        TableSpec {
            n_rows: 100_000,
            n_attrs: 10,
            record_len: 512,
            seed: 42,
            cluster_by: None,
        }
    }

    /// The paper's full scale: 1,000,000 rows of 512 bytes (512 MB).
    pub fn paper_full() -> Self {
        TableSpec {
            n_rows: 1_000_000,
            ..TableSpec::paper_scaled()
        }
    }

    /// A small spec for tests.
    pub fn tiny(n_rows: usize) -> Self {
        TableSpec {
            n_rows,
            n_attrs: 4,
            record_len: 64,
            seed: 7,
            cluster_by: None,
        }
    }

    /// Override the number of rows.
    pub fn with_rows(mut self, n: usize) -> Self {
        self.n_rows = n;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cluster the table by `attr`.
    pub fn clustered_by(mut self, attr: usize) -> Self {
        self.cluster_by = Some(attr);
        self
    }

    /// The matching schema.
    pub fn schema(&self) -> Schema {
        Schema::new(self.n_attrs, self.record_len)
    }

    /// Generate the rows: each attribute is an independent random
    /// permutation of `0..n_rows` scaled by 10 (duplicate-free, as in the
    /// paper), deterministically derived from `seed`.
    pub fn generate_rows(&self) -> Vec<Tuple> {
        let mut columns: Vec<Vec<Key>> = Vec::with_capacity(self.n_attrs);
        for a in 0..self.n_attrs {
            let mut rng = StdRng::seed_from_u64(self.seed ^ (a as u64).wrapping_mul(0x9E37_79B9));
            let mut col: Vec<Key> = (0..self.n_rows as Key).map(|v| v * 10).collect();
            col.shuffle(&mut rng);
            columns.push(col);
        }
        let mut rows: Vec<Tuple> = (0..self.n_rows)
            .map(|i| Tuple::new(columns.iter().map(|c| c[i]).collect()))
            .collect();
        if let Some(attr) = self.cluster_by {
            rows.sort_by_key(|t| t.attr(attr));
        }
        rows
    }

    /// Build the table in `db`: bulk-append the rows to a fresh heap.
    /// Indices are attached afterwards with [`Workload::attach_index`] so
    /// each starts as a freshly bulk-loaded contiguous tree, as in the
    /// paper's setup.
    pub fn build(&self, db: &mut Database) -> DbResult<Workload> {
        let tid = db.create_table("R", self.schema());
        let rows = self.generate_rows();
        let mut a_values = Vec::with_capacity(rows.len());
        for row in &rows {
            db.insert(tid, row)?;
            a_values.push(row.attr(0));
        }
        Ok(Workload {
            spec: *self,
            tid,
            a_values,
        })
    }
}

/// A built table plus everything needed to derive delete sets.
pub struct Workload {
    /// The spec that produced it.
    pub spec: TableSpec,
    /// Table id in the database.
    pub tid: TableId,
    /// Attribute-A value of every row (delete sets are drawn from these).
    pub a_values: Vec<Key>,
}

impl Workload {
    /// Attach an index on `attr`. The clustered flag is set automatically
    /// when the table layout is sorted by that attribute.
    pub fn attach_index(&self, db: &mut Database, def: IndexDef) -> DbResult<()> {
        let def = if self.spec.cluster_by == Some(def.attr) {
            def.clustered()
        } else {
            def
        };
        db.create_index(self.tid, def)
    }

    /// Draw the delete list `D`: `fraction` of the rows' A values, sampled
    /// without replacement, in random order (the *unsorted* D the
    /// `not sorted/trad` series consumes).
    pub fn delete_set(&self, fraction: f64, seed: u64) -> Vec<Key> {
        assert!((0.0..=1.0).contains(&fraction));
        let n = ((self.a_values.len() as f64) * fraction).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.a_values.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        idx.into_iter().map(|i| self.a_values[i]).collect()
    }

    /// Draw a delete list of A values that match *no* rows (for
    /// no-op/robustness tests): odd values never occur (generated values
    /// are multiples of 10).
    pub fn missing_keys(&self, n: usize, seed: u64) -> Vec<Key> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| rng.gen_range(0..self.a_values.len() as Key * 10) | 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bd_core::DatabaseConfig;

    fn db() -> Database {
        Database::new(DatabaseConfig::with_total_memory(2 << 20))
    }

    #[test]
    fn rows_are_duplicate_free_per_attribute() {
        let spec = TableSpec::tiny(500);
        let rows = spec.generate_rows();
        for a in 0..spec.n_attrs {
            let mut vals: Vec<Key> = rows.iter().map(|r| r.attr(a)).collect();
            vals.sort_unstable();
            vals.dedup();
            assert_eq!(vals.len(), 500, "attribute {a} has duplicates");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TableSpec::tiny(200).generate_rows();
        let b = TableSpec::tiny(200).generate_rows();
        assert_eq!(a, b);
        let c = TableSpec::tiny(200).with_seed(9).generate_rows();
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_layout_is_sorted_by_attr() {
        let rows = TableSpec::tiny(300).clustered_by(1).generate_rows();
        assert!(rows.windows(2).all(|w| w[0].attr(1) < w[1].attr(1)));
    }

    #[test]
    fn build_and_attach_marks_clustered() {
        let mut d = db();
        let w = TableSpec::tiny(200).clustered_by(0).build(&mut d).unwrap();
        w.attach_index(&mut d, IndexDef::secondary(0).unique())
            .unwrap();
        w.attach_index(&mut d, IndexDef::secondary(1)).unwrap();
        let t = d.table(w.tid).unwrap();
        assert!(t.index_on(0).unwrap().def.clustered);
        assert!(!t.index_on(1).unwrap().def.clustered);
        d.check_consistency(w.tid).unwrap();
    }

    #[test]
    fn delete_set_size_and_membership() {
        let mut d = db();
        let w = TableSpec::tiny(1000).build(&mut d).unwrap();
        let set = w.delete_set(0.15, 1);
        assert_eq!(set.len(), 150);
        let all: std::collections::HashSet<Key> = w.a_values.iter().copied().collect();
        assert!(set.iter().all(|k| all.contains(k)));
        // No duplicates in D.
        let uniq: std::collections::HashSet<Key> = set.iter().copied().collect();
        assert_eq!(uniq.len(), set.len());
        // Unsorted (overwhelmingly likely for 150 random draws).
        assert!(set.windows(2).any(|w| w[0] > w[1]));
    }

    #[test]
    fn missing_keys_match_nothing() {
        let mut d = db();
        let w = TableSpec::tiny(500).build(&mut d).unwrap();
        let all: std::collections::HashSet<Key> = w.a_values.iter().copied().collect();
        for k in w.missing_keys(100, 3) {
            assert!(!all.contains(&k));
        }
    }
}
