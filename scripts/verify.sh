#!/bin/sh
# Repo verification: format, lint, release build, tier-1 tests.
# Everything runs offline — external deps are vendored under vendor/.
set -eux

cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Differential strategy-equivalence audit: horizontal vs vertical vs
# vertical with parallel `⋈̄` arms must leave bit-equivalent structures.
cargo run --release -p bd-bench --bin repro -- --audit --parallel 3

# Fault-injection smoke: a transient fault must be ridden out (retry +
# serial degradation, bit-identical state), a bounded crash-at-every-I/O
# campaign must recover every crash point for both WAL drivers, and a
# bounded torn-write campaign must media-recover every surfaced tear
# (half-written page images rebuilt from the heap + WAL).
cargo run --release -p bd-bench --bin repro -- --faults --parallel 3

# Bench-snapshot gate: a bounded fig7 sweep must produce a valid
# machine-readable BENCH_<n>.json snapshot (schema, required fields,
# point count), keeping the perf trajectory emitters honest.
cargo run --release -p bd-bench --bin repro -- fig7 --rows 20000 --bench-json target/bench_ci.json
cargo run --release -p bd-bench --bin repro -- --check-bench target/bench_ci.json

# Online smoke: offline vs live bulk delete under foreground traffic at a
# bounded scale. Every run is shadow-model-checked, and the emitted
# snapshot must validate including its per-point foreground percentile
# arrays.
cargo run --release -p bd-bench --bin repro -- --live --rows 20000 --bench-json target/bench_live_ci.json
cargo run --release -p bd-bench --bin repro -- --check-bench target/bench_live_ci.json

# The committed live snapshot must stay schema-valid.
if [ -f BENCH_7.json ]; then
    cargo run --release -p bd-bench --bin repro -- --check-bench BENCH_7.json
fi

# Erasure smoke: the retention-window sweep (plain cascade vs durable
# erasure campaign over the sliding-window warehouse) at a bounded scale.
# Every campaign's proof-of-deletion must come back clean, and a bounded
# crash/torn-write sample of the campaign fault sweep must recover and
# re-prove at every sampled point.
cargo run --release -p bd-bench --bin repro -- --erase --rows 6000 --bench-json target/bench_erase_ci.json
cargo run --release -p bd-bench --bin repro -- --check-bench target/bench_erase_ci.json

# The committed erasure snapshot must stay schema-valid.
if [ -f BENCH_8.json ]; then
    cargo run --release -p bd-bench --bin repro -- --check-bench BENCH_8.json
fi

# Steady-state maintenance smoke: the sliding-window sweep must show the
# daemon holding the disk footprint (in-use pages within 10% of a fresh
# bulk load of the same live rows) while the unmaintained arm leaks, and
# the emitted snapshot must validate.
cargo run --release -p bd-bench --bin repro -- --maintain --rows 20000 --bench-json target/bench_maintain_ci.json
cargo run --release -p bd-bench --bin repro -- --check-bench target/bench_maintain_ci.json

# The committed maintenance snapshot must stay schema-valid.
if [ -f BENCH_9.json ]; then
    cargo run --release -p bd-bench --bin repro -- --check-bench BENCH_9.json
fi

# Engine-comparison smoke: the delete-fraction sweep replayed through the
# engine seam (B-tree bulk delete / drop&create vs the delete-aware LSM's
# tombstone and forced-purge arms) at a bounded scale. Every LSM cell is
# differentially audited against its B-tree twin and its page catalog is
# checked for leaks; the emitted snapshot must validate.
cargo run --release -p bd-bench --bin repro -- --lsm --rows 20000 --bench-json target/bench_lsm_ci.json
cargo run --release -p bd-bench --bin repro -- --check-bench target/bench_lsm_ci.json

# The committed engine-comparison snapshot must stay schema-valid.
if [ -f BENCH_10.json ]; then
    cargo run --release -p bd-bench --bin repro -- --check-bench BENCH_10.json
fi
