#!/bin/sh
# Repo verification: format, lint, release build, tier-1 tests.
# Everything runs offline — external deps are vendored under vendor/.
set -eux

cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy -- -D warnings
cargo build --release
cargo test -q
