#!/bin/sh
# Repo verification: format, lint, release build, tier-1 tests.
# Everything runs offline — external deps are vendored under vendor/.
set -eux

cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Differential strategy-equivalence audit: horizontal vs vertical vs
# vertical with parallel `⋈̄` arms must leave bit-equivalent structures.
cargo run --release -p bd-bench --bin repro -- --audit --parallel 3

# Fault-injection smoke: a transient fault must be ridden out (retry +
# serial degradation, bit-identical state), a bounded crash-at-every-I/O
# campaign must recover every crash point for both WAL drivers, and a
# bounded torn-write campaign must media-recover every surfaced tear
# (half-written page images rebuilt from the heap + WAL).
cargo run --release -p bd-bench --bin repro -- --faults --parallel 3

# Bench-snapshot gate: a bounded fig7 sweep must produce a valid
# machine-readable BENCH_<n>.json snapshot (schema, required fields,
# point count), keeping the perf trajectory emitters honest.
cargo run --release -p bd-bench --bin repro -- fig7 --rows 20000 --bench-json target/bench_ci.json
cargo run --release -p bd-bench --bin repro -- --check-bench target/bench_ci.json

# Online smoke: offline vs live bulk delete under foreground traffic at a
# bounded scale. Every run is shadow-model-checked, and the emitted
# snapshot must validate including its per-point foreground percentile
# arrays.
cargo run --release -p bd-bench --bin repro -- --live --rows 20000 --bench-json target/bench_live_ci.json
cargo run --release -p bd-bench --bin repro -- --check-bench target/bench_live_ci.json

# The committed live snapshot must stay schema-valid.
if [ -f BENCH_7.json ]; then
    cargo run --release -p bd-bench --bin repro -- --check-bench BENCH_7.json
fi
